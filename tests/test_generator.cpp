//===- tests/test_generator.cpp - Patch generator tests -------*- C++ -*-===//
///
/// The semi-automatic patch generator: classification of changes between
/// two version manifests and skeleton emission.

#include "patch/Generator.h"

#include <gtest/gtest.h>

using namespace dsu;

namespace {

VmFunction fn(const char *Name, const char *Ty, const char *Hash,
              const char *Impl = "") {
  return VmFunction{Name, Ty, Hash, Impl};
}

VersionManifest base() {
  VersionManifest M;
  M.Program = "app";
  M.Version = 1;
  M.Functions = {
      fn("parse", "fn(string) -> string", "h-parse-1"),
      fn("mime", "fn(string) -> string", "h-mime-1"),
      fn("log", "fn(string, int) -> unit", "h-log-1"),
  };
  M.Types = {VmType{"%cache@1", "{p: string, b: string}"}};
  return M;
}

TEST(GeneratorTest, NoChangesYieldsEmptyPatch) {
  VersionManifest Old = base();
  VersionManifest New = base();
  New.Version = 2;
  Expected<GeneratedPatch> G = generatePatch(Old, New);
  ASSERT_TRUE(G) << G.takeError().str();
  EXPECT_EQ(G->Stats.Unchanged, 3u);
  EXPECT_EQ(G->Stats.BodyChanged + G->Stats.Added + G->Stats.Removed +
                G->Stats.SigChanged + G->Stats.TypesBumped,
            0u);
  EXPECT_TRUE(G->Manifest.Provides.empty());
  EXPECT_EQ(G->Manifest.Id, "app-v1-to-v2");
}

TEST(GeneratorTest, BodyChangeProvides) {
  VersionManifest Old = base();
  VersionManifest New = base();
  New.Version = 2;
  New.Functions[0].BodyHash = "h-parse-2";
  Expected<GeneratedPatch> G = generatePatch(Old, New);
  ASSERT_TRUE(G);
  EXPECT_EQ(G->Stats.BodyChanged, 1u);
  ASSERT_EQ(G->Manifest.Provides.size(), 1u);
  EXPECT_EQ(G->Manifest.Provides[0].Name, "parse");
  // The generator synthesizes a native symbol when none is given.
  EXPECT_FALSE(G->Manifest.Provides[0].NativeSymbol.empty());
}

TEST(GeneratorTest, ImplNamePropagates) {
  VersionManifest Old = base();
  VersionManifest New = base();
  New.Functions[0].BodyHash = "h2";
  New.Functions[0].Impl = "custom_sym";
  Expected<GeneratedPatch> G = generatePatch(Old, New);
  ASSERT_TRUE(G);
  EXPECT_EQ(G->Manifest.Provides[0].NativeSymbol, "custom_sym");
}

TEST(GeneratorTest, AddedFunctionProvides) {
  VersionManifest Old = base();
  VersionManifest New = base();
  New.Functions.push_back(fn("stats", "fn() -> string", "h-stats-1"));
  Expected<GeneratedPatch> G = generatePatch(Old, New);
  ASSERT_TRUE(G);
  EXPECT_EQ(G->Stats.Added, 1u);
  ASSERT_EQ(G->Manifest.Provides.size(), 1u);
  EXPECT_EQ(G->Manifest.Provides[0].Name, "stats");
}

TEST(GeneratorTest, RemovedFunctionWarns) {
  VersionManifest Old = base();
  VersionManifest New = base();
  New.Functions.pop_back();
  Expected<GeneratedPatch> G = generatePatch(Old, New);
  ASSERT_TRUE(G);
  EXPECT_EQ(G->Stats.Removed, 1u);
  ASSERT_FALSE(G->Manifest.Warnings.empty());
  EXPECT_NE(G->Manifest.Warnings[0].find("log"), std::string::npos);
}

TEST(GeneratorTest, CompatibleSigChangeProvides) {
  VersionManifest Old = base();
  Old.Functions.push_back(fn("touch", "fn(%cache@1) -> unit", "h1"));
  VersionManifest New = Old;
  New.Functions.back().TypeText = "fn(%cache@2) -> unit";
  New.Functions.back().BodyHash = "h2";
  Expected<GeneratedPatch> G = generatePatch(Old, New);
  ASSERT_TRUE(G);
  EXPECT_EQ(G->Stats.SigChanged, 1u);
  ASSERT_EQ(G->Manifest.Provides.size(), 1u);
  EXPECT_EQ(G->Manifest.Provides[0].TypeText, "fn(%cache@2) -> unit");
}

TEST(GeneratorTest, IncompatibleSigChangeWarnsInsteadOfProviding) {
  VersionManifest Old = base();
  VersionManifest New = base();
  New.Functions[2].TypeText = "fn(string, int, int) -> unit"; // arity up
  Expected<GeneratedPatch> G = generatePatch(Old, New);
  ASSERT_TRUE(G);
  EXPECT_EQ(G->Stats.SigChanged, 1u);
  EXPECT_TRUE(G->Manifest.Provides.empty());
  ASSERT_FALSE(G->Manifest.Warnings.empty());
  EXPECT_NE(G->Manifest.Warnings[0].find("shim"), std::string::npos);
}

TEST(GeneratorTest, TypeReprChangeBumpsAndEmitsTransformerStub) {
  VersionManifest Old = base();
  VersionManifest New = base();
  New.Types[0] = VmType{"%cache@2", "{p: string, b: string, hits: int}"};
  Expected<GeneratedPatch> G = generatePatch(Old, New);
  ASSERT_TRUE(G);
  EXPECT_EQ(G->Stats.TypesBumped, 1u);
  ASSERT_EQ(G->Manifest.NewTypes.size(), 1u);
  EXPECT_EQ(G->Manifest.NewTypes[0].Name, "%cache@2");
  ASSERT_EQ(G->Manifest.Transformers.size(), 1u);
  EXPECT_EQ(G->Manifest.Transformers[0].From, "%cache@1");
  EXPECT_EQ(G->Manifest.Transformers[0].To, "%cache@2");
  // The stub source contains the transformer skeleton.
  EXPECT_NE(G->StubSource.find(G->Manifest.Transformers[0].Impl),
            std::string::npos);
  EXPECT_NE(G->StubSource.find("DsuNativeTransformOut"), std::string::npos);
}

TEST(GeneratorTest, ForgottenVersionBumpIsAutoBumped) {
  VersionManifest Old = base();
  VersionManifest New = base();
  // Same version, different repr: author forgot the bump.
  New.Types[0] = VmType{"%cache@1", "{p: string, b: string, hits: int}"};
  Expected<GeneratedPatch> G = generatePatch(Old, New);
  ASSERT_TRUE(G);
  ASSERT_EQ(G->Manifest.NewTypes.size(), 1u);
  EXPECT_EQ(G->Manifest.NewTypes[0].Name, "%cache@2");
  ASSERT_FALSE(G->Manifest.Warnings.empty());
}

TEST(GeneratorTest, BrandNewTypeNeedsNoTransformer) {
  VersionManifest Old = base();
  VersionManifest New = base();
  New.Types.push_back(VmType{"%log@1", "array<string>"});
  Expected<GeneratedPatch> G = generatePatch(Old, New);
  ASSERT_TRUE(G);
  ASSERT_EQ(G->Manifest.NewTypes.size(), 1u);
  EXPECT_EQ(G->Manifest.NewTypes[0].Name, "%log@1");
  EXPECT_TRUE(G->Manifest.Transformers.empty());
}

TEST(GeneratorTest, DifferentProgramsRejected) {
  VersionManifest Old = base();
  VersionManifest New = base();
  New.Program = "other";
  EXPECT_FALSE(generatePatch(Old, New));
}

TEST(GeneratorTest, GeneratedManifestParses) {
  VersionManifest Old = base();
  VersionManifest New = base();
  New.Version = 2;
  New.Functions[0].BodyHash = "h2";
  New.Types[0] = VmType{"%cache@2", "{p: string, b: string, hits: int}"};
  Expected<GeneratedPatch> G = generatePatch(Old, New);
  ASSERT_TRUE(G);
  Expected<PatchManifest> Back = PatchManifest::parse(G->Manifest.print());
  ASSERT_TRUE(Back) << Back.error().str();
  EXPECT_EQ(Back->Provides.size(), G->Manifest.Provides.size());
  EXPECT_EQ(Back->Transformers.size(), G->Manifest.Transformers.size());
}

TEST(GeneratorTest, StubSourceMentionsEveryProvide) {
  VersionManifest Old = base();
  VersionManifest New = base();
  New.Functions[0].BodyHash = "x";
  New.Functions[1].BodyHash = "y";
  Expected<GeneratedPatch> G = generatePatch(Old, New);
  ASSERT_TRUE(G);
  for (const ManifestProvide &P : G->Manifest.Provides)
    EXPECT_NE(G->StubSource.find(P.NativeSymbol), std::string::npos);
  EXPECT_NE(G->StubSource.find("dsu_patch_manifest"), std::string::npos);
}

} // namespace
