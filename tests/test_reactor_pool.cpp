//===- tests/test_reactor_pool.cpp - Multi-core serving + barrier -*- C++ -*-//
///
/// The multi-core reactor pool over real sockets: N epoll workers behind
/// one SO_REUSEPORT port, serving concurrent persistent connections
/// while dynamic patches commit through the cross-worker update barrier
/// — the paper's "update at quiescence" guarantee, preserved per worker
/// and coordinated across all of them.

#include "flashed/App.h"
#include "flashed/Client.h"
#include "flashed/Patches.h"
#include "net/ReactorPool.h"
#include "patch/PatchBuilder.h"
#include "runtime/UpdateController.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <netinet/in.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace dsu;
using namespace dsu::flashed;

namespace {

constexpr unsigned kWorkers = 3;

/// A repeatable *state-migrating* patch: declares %<name>@(V+1) with an
/// identity transformer over an int cell, so the commit is forced onto
/// the cross-worker barrier (code-only patches now commit rolling).
Expected<Patch> makeMigratingPatch(Runtime &RT, const std::string &TyName,
                                   uint32_t FromV) {
  return makeIdentityBumpPatch(RT.types(), VersionedName{TyName, FromV},
                               RT.types().intType());
}

/// Defines the int cell makeMigratingPatch() migrates.
void defineMigratableCell(Runtime &RT, const std::string &TyName,
                          const std::string &CellName) {
  ASSERT_FALSE(
      RT.defineNamedType(VersionedName{TyName, 1}, RT.types().intType()));
  Expected<StateCell *> Cell = RT.defineState(
      CellName, RT.types().namedType(TyName, 1),
      std::make_shared<int64_t>(7));
  ASSERT_TRUE(Cell) << Cell.takeError().str();
}

/// Connects a raw blocking socket to 127.0.0.1:Port; returns the fd.
int rawConnect(uint16_t Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// Reads from \p Fd until EOF (or error) and returns everything read.
std::string readAll(int Fd) {
  std::string Out;
  char Buf[4096];
  while (true) {
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N <= 0)
      break;
    Out.append(Buf, static_cast<size_t>(N));
  }
  return Out;
}

size_t countOccurrences(const std::string &Hay, const std::string &Needle) {
  size_t Count = 0;
  for (size_t Pos = Hay.find(Needle); Pos != std::string::npos;
       Pos = Hay.find(Needle, Pos + Needle.size()))
    ++Count;
  return Count;
}

/// Spins (bounded) until \p Pred holds; asserts instead of hanging the
/// suite when loader threads die early and the condition never comes.
#define WAIT_FOR(Pred)                                                     \
  do {                                                                     \
    int Spin_ = 0;                                                         \
    while (!(Pred) && Spin_++ != 5000)                                     \
      std::this_thread::sleep_for(std::chrono::milliseconds(2));           \
    ASSERT_TRUE(Pred) << "timed out waiting for: " #Pred;                  \
  } while (0)

/// FlashEd on a kWorkers-wide pool with the admin plane enabled.
class ReactorPoolTest : public ::testing::Test {
protected:
  void SetUp() override {
    DocStore Docs;
    Docs.put("/index.html", "<html>home</html>");
    Docs.put("/doc.html", "<html>doc</html>");
    Docs.fillSynthetic(8, 512);
    ASSERT_FALSE(App.init(std::move(Docs)));
    App.enableAdmin(RT.controller());

    net::PoolOptions O;
    O.Workers = kWorkers;
    O.PollTimeoutMs = 2;
    Pool = std::make_unique<net::ReactorPool>(
        [this](const RequestHead &Head, std::string_view Raw,
               std::string &Out, SharedBody &Body) {
          App.handleInto(Head, Raw, Out, Body);
        },
        O);
    Pool->setUpdateRuntime(RT);
    App.attachPool(*Pool);
    ASSERT_FALSE(Pool->start());
  }

  void TearDown() override { Pool->stop(); }

  void waitForApplied(unsigned N) {
    for (int Spin = 0; Spin != 2000 && RT.updatesApplied() < N; ++Spin)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ASSERT_GE(RT.updatesApplied(), N);
  }

  Runtime RT;
  FlashedApp App{RT};
  std::unique_ptr<net::ReactorPool> Pool;
};

TEST_F(ReactorPoolTest, ServesAcrossWorkersOnOnePort) {
  // Concurrent persistent connections; with SO_REUSEPORT the kernel
  // spreads them over the workers.
  constexpr unsigned Loaders = 4;
  constexpr uint64_t PerLoader = 64;
  std::vector<std::thread> Threads;
  std::atomic<uint64_t> Failures{0};
  for (unsigned T = 0; T != Loaders; ++T)
    Threads.emplace_back([&] {
      Expected<LoadStats> S = runLoadKeepAlive(
          Pool->port(), {"/doc0.html", "/doc1.html"}, PerLoader, 2);
      if (!S)
        Failures.fetch_add(PerLoader);
      else
        Failures.fetch_add(S->Failures);
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0u);
  EXPECT_GE(Pool->requestsServed(), Loaders * PerLoader);
  EXPECT_GE(Pool->connectionsAccepted(), Loaders);
  // Aggregate equals the sum of the per-worker lock-free counters.
  uint64_t Sum = 0;
  for (unsigned I = 0; I != Pool->workers(); ++I)
    Sum += Pool->workerStats(I).Requests.load();
  EXPECT_EQ(Sum, Pool->requestsServed());
}

TEST_F(ReactorPoolTest, PatchCommitsExactlyOnceUnderConcurrentLoad) {
  // K loader threads hammer the v1-buggy target over persistent
  // connections while the parse-fix patch is POSTed through the admin
  // plane mid-traffic.
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Old{0}, New{0}, Odd{0};
  std::vector<std::thread> Loaders;
  for (unsigned T = 0; T != kWorkers; ++T)
    Loaders.emplace_back([&] {
      KeepAliveClient C;
      ASSERT_FALSE(C.connectTo(Pool->port()));
      while (!Stop.load()) {
        Expected<FetchResult> R = C.get("/doc.html?x=1");
        if (!R)
          break;
        if (R->Status == 404)
          Old.fetch_add(1); // v1: query string defeats the lookup
        else if (R->Status == 200 && R->Body == "<html>doc</html>")
          New.fetch_add(1); // v2: query string stripped
        else
          Odd.fetch_add(1);
      }
    });

  // Let traffic flow, then stage the patch off-thread via the admin
  // plane on its own connection.
  WAIT_FOR(Old.load() >= 50);
  Expected<FetchResult> Post = httpPost(
      Pool->port(), "/admin/patches", vtalParseFixPatchText(), "text/plain");
  ASSERT_TRUE(Post) << Post.takeError().str();
  EXPECT_EQ(Post->Status, 202);

  waitForApplied(1);
  // Commit happened exactly once — and, being code-only, as a
  // *rolling* commit: no barrier round formed and no worker parked.
  EXPECT_EQ(RT.updatesApplied(), 1u);
  EXPECT_EQ(RT.rollingCommits(), 1u);
  EXPECT_EQ(Pool->barrierRounds(), 0u);
  uint64_t Parks = 0;
  for (unsigned I = 0; I != Pool->workers(); ++I)
    Parks += Pool->workerStats(I).Pauses.load();
  EXPECT_EQ(Parks, 0u);

  // Every worker observes the new generation on its next request: keep
  // loading briefly and require fresh 200s with zero stragglers after.
  uint64_t NewAtCommit = New.load();
  WAIT_FOR(New.load() >= NewAtCommit + 50);
  Stop.store(true);
  for (std::thread &T : Loaders)
    T.join();
  EXPECT_GT(Old.load(), 0u);
  EXPECT_GT(New.load(), 0u);
  EXPECT_EQ(Odd.load(), 0u);

  // A 404 strictly after the commit would mean a worker served old code
  // past the barrier.  Verify with a fresh connection per worker's
  // share of the load.
  for (unsigned I = 0; I != 2 * kWorkers; ++I) {
    Expected<FetchResult> R = httpGet(Pool->port(), "/doc.html?x=1");
    ASSERT_TRUE(R);
    EXPECT_EQ(R->Status, 200);
  }
}

TEST_F(ReactorPoolTest, RollbackRunsAtTheBarrierFromAWorker) {
  // Apply P1 through the barrier first.
  Expected<Patch> P1 = makePatchP1(App);
  ASSERT_TRUE(P1) << P1.takeError().str();
  RT.requestUpdate(std::move(*P1));
  Pool->wake();
  waitForApplied(1);
  Expected<FetchResult> Fixed = httpGet(Pool->port(), "/doc.html?x=1");
  ASSERT_TRUE(Fixed);
  EXPECT_EQ(Fixed->Status, 200);

  // POST /admin/rollback is served by a worker, which must contribute
  // its own barrier arrival (self-park) — the response only exists if
  // that protocol completes.
  Expected<FetchResult> R = httpPost(
      Pool->port(), "/admin/rollback?name=flashed.parse_target", "x");
  ASSERT_TRUE(R) << R.takeError().str();
  EXPECT_EQ(R->Status, 200);
  EXPECT_NE(R->Body.find("rolled_back"), std::string::npos);

  Expected<FetchResult> Reverted = httpGet(Pool->port(), "/doc.html?x=1");
  ASSERT_TRUE(Reverted);
  EXPECT_EQ(Reverted->Status, 404); // the v1 bug is back
}

TEST_F(ReactorPoolTest, MetricsAndStatusReportPerWorkerState) {
  Expected<LoadStats> Load =
      runLoadKeepAlive(Pool->port(), {"/doc0.html"}, 32, 2);
  ASSERT_TRUE(Load) << Load.takeError().str();
  // Force one barrier round so the pause histogram is populated: a
  // code-only patch would commit rolling, so ship a state migration.
  defineMigratableCell(RT, "mcell", "m.cell");
  Expected<Patch> P = makeMigratingPatch(RT, "mcell", 1);
  ASSERT_TRUE(P) << P.takeError().str();
  RT.requestUpdate(std::move(*P));
  Pool->wake();
  waitForApplied(1);

  Expected<FetchResult> Status = httpGet(Pool->port(), "/admin/status");
  ASSERT_TRUE(Status) << Status.takeError().str();
  EXPECT_EQ(Status->Status, 200);
  EXPECT_NE(Status->Body.find("\"workers\": 3"), std::string::npos);
  EXPECT_NE(Status->Body.find("\"worker_state\""), std::string::npos);
  EXPECT_NE(Status->Body.find("\"barrier_rounds\""), std::string::npos);
  EXPECT_NE(Status->Body.find("\"rolling_commits\""), std::string::npos);
  EXPECT_NE(Status->Body.find("\"pending_commit\""), std::string::npos);
  EXPECT_NE(Status->Body.find("\"epoch_global\""), std::string::npos);
  EXPECT_EQ(countOccurrences(Status->Body, "\"state\": "), kWorkers);
  EXPECT_EQ(countOccurrences(Status->Body, "\"epoch\": "), kWorkers);
  EXPECT_EQ(countOccurrences(Status->Body, "\"cpu\": "), kWorkers);

  Expected<FetchResult> Metrics = httpGet(Pool->port(), "/admin/metrics");
  ASSERT_TRUE(Metrics) << Metrics.takeError().str();
  EXPECT_EQ(Metrics->Status, 200);
  EXPECT_NE(Metrics->Headers.find("text/plain"), std::string::npos);
  for (unsigned I = 0; I != kWorkers; ++I) {
    std::string Label = "{worker=\"" + std::to_string(I) + "\"}";
    EXPECT_GE(countOccurrences(Metrics->Body,
                               "dsu_worker_requests_total" + Label),
              1u);
    EXPECT_GE(countOccurrences(Metrics->Body,
                               "dsu_update_pause_us_count" + Label),
              1u);
  }
  EXPECT_NE(Metrics->Body.find("dsu_update_pause_us_bucket"),
            std::string::npos);
  EXPECT_NE(Metrics->Body.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(Metrics->Body.find("dsu_rolling_commits_total"),
            std::string::npos);
  EXPECT_NE(Metrics->Body.find("dsu_stage_to_commit_us_count"),
            std::string::npos);
  EXPECT_NE(Metrics->Body.find("dsu_worker_epoch_lag"),
            std::string::npos);
  // One committed barrier: every live worker recorded a pause.
  uint64_t Pauses = 0;
  for (unsigned I = 0; I != kWorkers; ++I)
    Pauses += Pool->workerStats(I).Pauses.load();
  EXPECT_GE(Pauses, kWorkers);
}

// --- Barrier semantics on a bare runtime (no FlashEd) -------------------

int64_t firstV1(int64_t) { return 1; }
int64_t secondV1(int64_t) { return 1; }
int64_t firstV2(int64_t) { return 2; }
int64_t secondV2(int64_t) { return 2; }

/// A pool whose handler calls TWO updateables per request; a patch that
/// swings both must never be observed half-applied.  The patch is
/// code-only, so it commits *rolling* — each worker's view swings at
/// its own quiescent point, with zero barrier rounds and zero parks —
/// and the atomicity guarantee must survive without the barrier.
TEST(ReactorPoolBarrierTest, NoRequestObservesAHalfCommittedBinding) {
  Runtime RT;
  auto First = RT.defineUpdateable("pair.first", &firstV1);
  auto Second = RT.defineUpdateable("pair.second", &secondV1);
  ASSERT_TRUE(First);
  ASSERT_TRUE(Second);

  net::PoolOptions O;
  O.Workers = kWorkers;
  O.PollTimeoutMs = 2;
  net::ReactorPool Pool(
      [&](const RequestHead &Head, std::string_view, std::string &Out,
          SharedBody &) {
        std::string Body = std::to_string((*First)(0)) + "," +
                           std::to_string((*Second)(0));
        appendHttpResponse(Out, 200, "text/plain", Body, Head.KeepAlive);
      },
      O);
  Pool.setUpdateRuntime(RT);
  ASSERT_FALSE(Pool.start());

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> OldOld{0}, NewNew{0}, Torn{0};
  std::vector<std::thread> Loaders;
  for (unsigned T = 0; T != kWorkers; ++T)
    Loaders.emplace_back([&] {
      KeepAliveClient C;
      ASSERT_FALSE(C.connectTo(Pool.port()));
      while (!Stop.load()) {
        Expected<FetchResult> R = C.get("/pair");
        if (!R)
          break;
        if (R->Body == "1,1")
          OldOld.fetch_add(1);
        else if (R->Body == "2,2")
          NewNew.fetch_add(1);
        else
          Torn.fetch_add(1); // "1,2" / "2,1": half-committed binding
      }
    });

  WAIT_FOR(OldOld.load() >= 50);
  Expected<Patch> P = PatchBuilder(RT.types(), "pair-v2")
                          .describe("swing both bindings atomically")
                          .provide("pair.first", &firstV2)
                          .provide("pair.second", &secondV2)
                          .build();
  ASSERT_TRUE(P) << P.takeError().str();
  RT.requestUpdate(std::move(*P));
  Pool.wake();
  for (int Spin = 0; Spin != 2000 && RT.updatesApplied() == 0; ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_EQ(RT.updatesApplied(), 1u);
  WAIT_FOR(NewNew.load() >= 50);
  Stop.store(true);
  for (std::thread &T : Loaders)
    T.join();
  Pool.stop();

  EXPECT_GT(OldOld.load(), 0u);
  EXPECT_GT(NewNew.load(), 0u);
  EXPECT_EQ(Torn.load(), 0u);
  // The commit was rolling: no barrier, no parked worker.
  EXPECT_EQ(RT.rollingCommits(), 1u);
  EXPECT_EQ(Pool.barrierRounds(), 0u);
  uint64_t Parks = 0;
  for (unsigned I = 0; I != Pool.workers(); ++I)
    Parks += Pool.workerStats(I).Pauses.load();
  EXPECT_EQ(Parks, 0u);
}

/// A worker stuck mid-request must DELAY the barrier (the update waits
/// for quiescence), never be skipped over.  The patch ships a state
/// migration: code-only patches no longer need the barrier at all.
TEST(ReactorPoolBarrierTest, StuckWorkerDelaysTheBarrier) {
  Runtime RT;
  auto Fn = RT.defineUpdateable("slow.fn", &firstV1);
  ASSERT_TRUE(Fn);
  defineMigratableCell(RT, "slowcell", "slow.cell");

  std::mutex GateMu;
  std::condition_variable GateCV;
  bool GateOpen = false;
  std::atomic<bool> HandlerEntered{false};

  net::PoolOptions O;
  O.Workers = 2;
  O.PollTimeoutMs = 2;
  net::ReactorPool Pool(
      [&](const RequestHead &Head, std::string_view, std::string &Out,
          SharedBody &) {
        if (Head.Target == "/block") {
          HandlerEntered.store(true);
          std::unique_lock<std::mutex> L(GateMu);
          GateCV.wait(L, [&] { return GateOpen; });
        }
        appendHttpResponse(Out, 200, "text/plain",
                           std::to_string((*Fn)(0)), Head.KeepAlive);
      },
      O);
  Pool.setUpdateRuntime(RT);
  ASSERT_FALSE(Pool.start());

  // Occupy one worker mid-request.
  std::thread Blocked([&] {
    Expected<FetchResult> R = httpGet(Pool.port(), "/block");
    ASSERT_TRUE(R);
    EXPECT_EQ(R->Status, 200);
  });
  WAIT_FOR(HandlerEntered.load());

  // Queue a state-migrating update: it must NOT commit while the
  // worker is stuck (the barrier waits for quiescence).
  Expected<Patch> P = makeMigratingPatch(RT, "slowcell", 1);
  ASSERT_TRUE(P);
  RT.requestUpdate(std::move(*P));
  Pool.wake();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(RT.updatesApplied(), 0u)
      << "barrier committed while a worker was mid-request";
  EXPECT_TRUE(RT.updatePending());

  // Release the stuck worker: the barrier forms and the update lands.
  {
    std::lock_guard<std::mutex> L(GateMu);
    GateOpen = true;
  }
  GateCV.notify_all();
  Blocked.join();
  for (int Spin = 0; Spin != 2000 && RT.updatesApplied() == 0; ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(RT.updatesApplied(), 1u);
  Pool.stop();
}

/// Graceful pool stop: buffered pipelined requests are served and
/// flushed before the connection closes; the listener closes first.
TEST(ReactorPoolBarrierTest, StopDrainsInFlightPipelinedRequests) {
  std::mutex GateMu;
  std::condition_variable GateCV;
  bool GateOpen = false;
  std::atomic<bool> HandlerEntered{false};

  net::PoolOptions O;
  O.Workers = 2;
  O.PollTimeoutMs = 2;
  net::ReactorPool Pool(
      [&](const RequestHead &Head, std::string_view, std::string &Out,
          SharedBody &) {
        if (Head.Target == "/block" && !HandlerEntered.exchange(true)) {
          std::unique_lock<std::mutex> L(GateMu);
          GateCV.wait(L, [&] { return GateOpen; });
        }
        appendHttpResponse(Out, 200, "text/plain", "ok", Head.KeepAlive);
      },
      O);
  ASSERT_FALSE(Pool.start());

  int Fd = rawConnect(Pool.port());
  ASSERT_GE(Fd, 0);
  // Three pipelined requests in one burst; the first parks the worker
  // so all three are guaranteed to be in the server's buffer when stop
  // begins.
  std::string Burst;
  for (const char *T : {"/block", "/a", "/b"})
    Burst += std::string("GET ") + T + " HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(::send(Fd, Burst.data(), Burst.size(), 0),
            static_cast<ssize_t>(Burst.size()));
  WAIT_FOR(HandlerEntered.load());

  std::thread Stopper([&] { Pool.stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    std::lock_guard<std::mutex> L(GateMu);
    GateOpen = true;
  }
  GateCV.notify_all();
  Stopper.join();

  // All three responses arrived, then EOF — nothing was dropped by the
  // shutdown race.
  std::string All = readAll(Fd);
  ::close(Fd);
  EXPECT_EQ(countOccurrences(All, "HTTP/1.1 200"), 3u);
  EXPECT_EQ(countOccurrences(All, "ok"), 3u);
}

} // namespace
