//===- tests/test_vtal_native.cpp - VTAL native tier tests ----*- C++ -*-===//
///
/// The native tier's contract is *indistinguishability*: a module run
/// through the baseline compiler must produce the same values, the same
/// trap messages, and bit-for-bit the same fuel consumption as the
/// verifier-trusted interpreter, for every input and every fuel limit —
/// deoptimization at any safe point included.  These tests pin that
/// contract (the bulk differential corpus lives in
/// test_vtal_native_diff.cpp), plus the encoder, the tier policy, epoch
/// retirement of code pages, and the patch-loader integration.

#include "core/Runtime.h"
#include "epoch/Epoch.h"
#include "patch/PatchLoader.h"
#include "trace/Profile.h"
#include "vtal/Assembler.h"
#include "vtal/Interp.h"
#include "vtal/Verifier.h"
#ifndef DSU_VTAL_NO_NATIVE
#include "vtal/native/CodeArena.h"
#include "vtal/native/NativeImage.h"
#include "vtal/native/X64Emitter.h"
#endif

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

using namespace dsu;
using namespace dsu::vtal;

#ifdef DSU_VTAL_NO_NATIVE

TEST(VtalNativeTest, CompiledOut) {
  GTEST_SKIP() << "native tier compiled out (DSU_VTAL_NATIVE=OFF)";
}

#else // DSU_VTAL_NO_NATIVE

using native::NativeImage;
using native::NativeStats;
using native::TierPolicy;

namespace {

Module mustAssembleVerified(const char *Src) {
  Expected<Module> M = assemble(Src);
  EXPECT_TRUE(M) << M.error().str();
  Error E = verifyModule(*M);
  EXPECT_FALSE(E) << E.str();
  return std::move(*M);
}

/// One observed execution: success/value or error text, plus fuel.
struct Outcome {
  bool Ok = false;
  std::string Err;
  Value Val;
  uint64_t Fuel = 0;
};

Outcome runOn(Interpreter &I, const char *Fn, const std::vector<Value> &Args) {
  Outcome O;
  Expected<Value> R = I.call(Fn, Args);
  O.Fuel = I.lastFuelUsed();
  if (R) {
    O.Ok = true;
    O.Val = *R;
  } else {
    O.Err = R.error().str();
  }
  return O;
}

/// Runs \p Fn through a plain interpreter and through one carrying a
/// fully compiled image, asserting identical outcome and fuel.
void expectTierParity(const Module &M, const char *Fn,
                      const std::vector<Value> &Args, uint64_t FuelLimit = 0) {
  Interpreter Ref(M, FuelLimit);
  Interpreter Nat(M, FuelLimit);
  Expected<std::shared_ptr<const NativeImage>> Img =
      NativeImage::compile(Nat.resolved());
  ASSERT_TRUE(Img) << Img.error().str();
  Nat.setNativeImage(*Img);
  Outcome A = runOn(Ref, Fn, Args);
  Outcome B = runOn(Nat, Fn, Args);
  EXPECT_EQ(A.Ok, B.Ok) << Fn << ": " << A.Err << " vs " << B.Err;
  if (A.Ok && B.Ok) {
    ASSERT_EQ(A.Val.kind(), B.Val.kind()) << Fn;
    switch (A.Val.kind()) {
    case ValKind::VK_Int:
      EXPECT_EQ(A.Val.asInt(), B.Val.asInt()) << Fn;
      break;
    case ValKind::VK_Float: {
      // Bit-compare: NaN payloads and signed zeros must match too.
      uint64_t BA, BB;
      double DA = A.Val.asFloat(), DB = B.Val.asFloat();
      std::memcpy(&BA, &DA, 8);
      std::memcpy(&BB, &DB, 8);
      EXPECT_EQ(BA, BB) << Fn;
      break;
    }
    case ValKind::VK_Bool:
      EXPECT_EQ(A.Val.asBool(), B.Val.asBool()) << Fn;
      break;
    default:
      break;
    }
  } else {
    EXPECT_EQ(A.Err, B.Err) << Fn;
  }
  EXPECT_EQ(A.Fuel, B.Fuel) << Fn << ": fuel diverged";
}

const char *FibSrc = R"(
module fib
func fib (n: int) -> int {
  load n
  push.i 2
  lt
  brif base
  load n
  push.i 1
  sub
  call fib
  load n
  push.i 2
  sub
  call fib
  add
  ret
base:
  load n
  ret
}
)";

} // namespace

//===----------------------------------------------------------------------===//
// Encoder
//===----------------------------------------------------------------------===//

TEST(VtalNativeTest, EmitterEncodesExecutableCode) {
  using namespace native;
  // args[0] * 3 + args[1], hand-emitted: exercises mov/ALU/imul/jcc
  // encodings and the CodeArena W^X flip end to end.
  X64Emitter E;
  E.movRM(RAX, RSI, 0);        // rax = args[0]
  E.imulRM(RAX, RSI, 0);       // rax *= args[0]  (square, to see memory form)
  E.movRM(RCX, RSI, 8);        // rcx = args[1]
  E.aluRR(0x03, RAX, RCX);     // rax += rcx
  E.aluRI(7, RAX, 100);        // cmp rax, 100
  size_t Skip = E.jcc(CC_L);   // if (rax < 100) skip the negate
  E.negR(RAX);
  E.fix(Skip, E.pos());
  E.ret();

  CodeArena Arena;
  ASSERT_FALSE(Arena.map(E.code().size()));
  Arena.write(0, E.code().data(), E.code().size());
  ASSERT_FALSE(Arena.seal());

  auto Fn = reinterpret_cast<uint64_t (*)(void *, const uint64_t *)>(
      const_cast<uint8_t *>(Arena.base()));
  uint64_t Args1[2] = {7, 2}; // 51 < 100
  EXPECT_EQ(Fn(nullptr, Args1), 51u);
  uint64_t Args2[2] = {12, 6}; // 150 >= 100 -> negated
  EXPECT_EQ(static_cast<int64_t>(Fn(nullptr, Args2)), -150);
}

TEST(VtalNativeTest, ArenaSealsWriteProtection) {
  native::CodeArena Arena;
  ASSERT_FALSE(Arena.map(16));
  const uint8_t Ret = 0xC3;
  Arena.write(0, &Ret, 1);
  ASSERT_FALSE(Arena.seal());
  // Sealed pages execute.
  reinterpret_cast<void (*)()>(const_cast<uint8_t *>(Arena.base()))();
}

//===----------------------------------------------------------------------===//
// Compile set
//===----------------------------------------------------------------------===//

TEST(VtalNativeTest, RepresentableExcludesStringFrames) {
  Module M = mustAssembleVerified(R"(
module rep
func intfn (a: int, b: int) -> int {
  load a
  load b
  add
  ret
}
func strresult () -> string {
  push.s "x"
  ret
}
func strparam (s: string) -> int {
  load s
  slen
  ret
}
func strlocal (n: int) -> int {
  locals (tmp: string)
  load n
  ret
}
func pushes_str (n: int) -> int {
  push.s "q"
  slen
  load n
  add
  ret
}
)");
  Interpreter I(M);
  std::vector<bool> R = NativeImage::representable(I.resolved());
  ASSERT_EQ(R.size(), 5u);
  EXPECT_TRUE(R[0]);  // intfn
  EXPECT_FALSE(R[1]); // string result
  EXPECT_FALSE(R[2]); // string param
  EXPECT_FALSE(R[3]); // string local
  // String *operations* on a string-free frame are compiled (the PushS
  // site deoptimizes the one activation that reaches it).
  EXPECT_TRUE(R[4]);

  Expected<std::shared_ptr<const NativeImage>> Img =
      NativeImage::compile(I.resolved());
  ASSERT_TRUE(Img) << Img.error().str();
  EXPECT_EQ((*Img)->compiledCount(), 2u);
  EXPECT_TRUE((*Img)->compiled(0));
  EXPECT_NE((*Img)->entry(0), nullptr);
  EXPECT_EQ((*Img)->entry(1), nullptr);
}

TEST(VtalNativeTest, CompileMaskNarrowsTheSet) {
  Module M = mustAssembleVerified(R"(
module mask
func a () -> int {
  push.i 1
  ret
}
func b () -> int {
  push.i 2
  ret
}
)");
  Interpreter I(M);
  std::vector<bool> Mask = {false, true};
  Expected<std::shared_ptr<const NativeImage>> Img =
      NativeImage::compile(I.resolved(), &Mask);
  ASSERT_TRUE(Img) << Img.error().str();
  EXPECT_FALSE((*Img)->compiled(0));
  EXPECT_TRUE((*Img)->compiled(1));
}

//===----------------------------------------------------------------------===//
// Execution parity
//===----------------------------------------------------------------------===//

TEST(VtalNativeTest, RecursionParityWithFuel) {
  Module M = mustAssembleVerified(FibSrc);
  for (int64_t N = 0; N <= 18; ++N)
    expectTierParity(M, "fib", {Value::makeInt(N)});
}

TEST(VtalNativeTest, TrapParity) {
  Module M = mustAssembleVerified(R"(
module traps
func div (a: int, b: int) -> int {
  load a
  load b
  div
  ret
}
func spin () -> int {
loop:
  br loop
}
func down (n: int) -> int {
  load n
  call down
  ret
}
)");
  // Division by zero, INT64_MIN/-1 overflow: message and fuel identical.
  expectTierParity(M, "div", {Value::makeInt(9), Value::makeInt(0)});
  expectTierParity(M, "div",
                   {Value::makeInt(INT64_MIN), Value::makeInt(-1)});
  // Fuel exhaustion deopts, and the interpreter then reports it.
  expectTierParity(M, "spin", {}, /*FuelLimit=*/777);
  // Call-depth overflow through native frames.
  expectTierParity(M, "down", {Value::makeInt(0)});
}

TEST(VtalNativeTest, DeoptFuelSweepIsExact) {
  // THE fuel-parity test: for every fuel limit from 1 up to just past
  // fib(8)'s requirement, both tiers must agree on outcome, message and
  // remaining-fuel accounting.  Every limit in the sweep deopts at a
  // different segment boundary, so this walks the deopt protocol across
  // the whole function body.
  Module M = mustAssembleVerified(FibSrc);
  uint64_t Need;
  {
    Interpreter Probe(M);
    ASSERT_TRUE(Probe.call("fib", {Value::makeInt(8)}));
    Need = Probe.lastFuelUsed();
  }
  uint64_t DeoptsBefore =
      NativeStats::instance().Deopts.load(std::memory_order_relaxed);
  for (uint64_t Limit = 1; Limit <= Need + 1; ++Limit)
    expectTierParity(M, "fib", {Value::makeInt(8)}, Limit);
  EXPECT_GT(NativeStats::instance().Deopts.load(std::memory_order_relaxed),
            DeoptsBefore);
}

TEST(VtalNativeTest, StringOpsDeoptAndFinishInterpreted) {
  Module M = mustAssembleVerified(R"(
module strops
func tag (n: int) -> int {
  load n
  push.i 2
  mul
  push.s "abcdef"
  slen
  add
  ret
}
)");
  // tag compiles (string-free frame at entry), then deopts at push.s;
  // the interpreter finishes and the arithmetic already done re-runs
  // identically because deopt happens at an unpaid segment head.
  Interpreter Probe(M);
  Expected<std::shared_ptr<const NativeImage>> Img =
      NativeImage::compile(Probe.resolved());
  ASSERT_TRUE(Img) << Img.error().str();
  EXPECT_TRUE((*Img)->compiled(0));
  for (int64_t N = -3; N <= 3; ++N)
    expectTierParity(M, "tag", {Value::makeInt(N)});
}

TEST(VtalNativeTest, HostImportParity) {
  Module M = mustAssembleVerified(R"(
module host
import adder : (int, int) -> int
func sum3 (a: int, b: int, c: int) -> int {
  load a
  load b
  call adder
  load c
  call adder
  ret
}
)");
  Interpreter Ref(M);
  Interpreter Nat(M);
  for (Interpreter *I : {&Ref, &Nat})
    ASSERT_FALSE(I->bindImport(
        "adder", [](const std::vector<Value> &A) -> Expected<Value> {
          return Value::makeInt(A[0].asInt() + A[1].asInt());
        }));
  Expected<std::shared_ptr<const NativeImage>> Img =
      NativeImage::compile(Nat.resolved());
  ASSERT_TRUE(Img) << Img.error().str();
  ASSERT_TRUE((*Img)->compiled(0));
  Nat.setNativeImage(*Img);
  Outcome A = runOn(Ref, "sum3",
                    {Value::makeInt(1), Value::makeInt(2), Value::makeInt(3)});
  Outcome B = runOn(Nat, "sum3",
                    {Value::makeInt(1), Value::makeInt(2), Value::makeInt(3)});
  ASSERT_TRUE(A.Ok && B.Ok) << A.Err << " / " << B.Err;
  EXPECT_EQ(A.Val.asInt(), 6);
  EXPECT_EQ(B.Val.asInt(), 6);
  EXPECT_EQ(A.Fuel, B.Fuel);

  // Unbound import: identical error text and fuel from both tiers.
  expectTierParity(M, "sum3",
                   {Value::makeInt(1), Value::makeInt(2), Value::makeInt(3)});
}

//===----------------------------------------------------------------------===//
// Tier policy
//===----------------------------------------------------------------------===//

TEST(VtalNativeTest, TierPolicyFromEnv) {
  auto WithEnv = [](const char *V) {
    if (V)
      ::setenv("DSU_VTAL_NATIVE", V, 1);
    else
      ::unsetenv("DSU_VTAL_NATIVE");
    TierPolicy P = TierPolicy::fromEnv();
    ::unsetenv("DSU_VTAL_NATIVE");
    return P;
  };
  EXPECT_EQ(WithEnv(nullptr).ModeV, TierPolicy::Mode::On);
  EXPECT_EQ(WithEnv("off").ModeV, TierPolicy::Mode::Off);
  EXPECT_EQ(WithEnv("0").ModeV, TierPolicy::Mode::Off);
  EXPECT_EQ(WithEnv("all").ModeV, TierPolicy::Mode::All);
  EXPECT_EQ(WithEnv("on").ModeV, TierPolicy::Mode::On);

  ::setenv("DSU_VTAL_NATIVE_SMALL", "17", 1);
  ::setenv("DSU_VTAL_NATIVE_HOT_FUEL", "12345", 1);
  TierPolicy P = TierPolicy::fromEnv();
  ::unsetenv("DSU_VTAL_NATIVE_SMALL");
  ::unsetenv("DSU_VTAL_NATIVE_HOT_FUEL");
  EXPECT_EQ(P.SmallFnInsts, 17u);
  EXPECT_EQ(P.HotSelfFuel, 12345u);
}

//===----------------------------------------------------------------------===//
// Epoch retirement of code pages
//===----------------------------------------------------------------------===//

TEST(VtalNativeTest, SupersededImagesEpochRetireTheirPages) {
  Module M = mustAssembleVerified(FibSrc);
  NativeStats &S = NativeStats::instance();
  uint64_t RetiredBefore = S.ArenasRetired.load(std::memory_order_relaxed);
  uint64_t LiveBefore = S.CodeBytesLive.load(std::memory_order_relaxed);
  uint64_t EpochRetiredBefore = epoch::domain().retiredTotal();
  {
    Interpreter I(M);
    Expected<std::shared_ptr<const NativeImage>> Img =
        NativeImage::compile(I.resolved());
    ASSERT_TRUE(Img) << Img.error().str();
    EXPECT_GT((*Img)->codeBytes(), 0u);
    EXPECT_GT(S.CodeBytesLive.load(std::memory_order_relaxed), LiveBefore);
    I.setNativeImage(*Img);
    ASSERT_TRUE(I.call("fib", {Value::makeInt(10)}));
    // Image (and the interpreter's reference) drop here.
  }
  EXPECT_EQ(S.ArenasRetired.load(std::memory_order_relaxed),
            RetiredBefore + 1);
  EXPECT_EQ(S.CodeBytesLive.load(std::memory_order_relaxed), LiveBefore);
  // The pages went through the epoch domain, not straight to munmap.
  EXPECT_GT(epoch::domain().retiredTotal(), EpochRetiredBefore);
  epoch::domain().reclaim();
}

//===----------------------------------------------------------------------===//
// Patch-loader integration
//===----------------------------------------------------------------------===//

namespace {

int64_t squareV1(int64_t X) { return X * X; }

const char *CubePatch = R"dsu(
(patch
  (id "square-to-cube-native")
  (description "int-only function: native tier compiles it at link")
  (provides
    (fn (name "app.square")
        (type "fn(int) -> int")
        (vtal-fn "cube")))
  (vtal-module
"module cube_mod
func cube (x: int) -> int {
  load x
  load x
  mul
  load x
  mul
  ret
}"))
)dsu";

} // namespace

TEST(VtalNativeTest, PatchLoaderCompilesAtLinkAndStampsBinding) {
  Runtime RT;
  Updateable<int64_t(int64_t)> Square =
      cantFail(RT.defineUpdateable("app.square", &squareV1));
  uint64_t EntriesBefore =
      NativeStats::instance().NativeEntries.load(std::memory_order_relaxed);

  Expected<Patch> P = loadVtalPatch(RT.types(), RT.exports(), CubePatch);
  ASSERT_TRUE(P) << P.takeError().str();
  // The provide's function is tiny and string-free: compiled at link,
  // and the binding carries its machine-code entry.
  ASSERT_EQ(P->Unit.Provides.size(), 1u);
  EXPECT_NE(P->Unit.Provides[0].Code.NativeEntry, nullptr);

  ASSERT_FALSE(RT.applyNow(std::move(*P)));
  EXPECT_EQ(Square(3), 27);
  EXPECT_EQ(Square(-5), -125);
  // The calls above dispatched through the compiled entry.
  EXPECT_GT(NativeStats::instance().NativeEntries.load(
                std::memory_order_relaxed),
            EntriesBefore);
}

TEST(VtalNativeTest, ProfilerPromotionWidensTheCompileSet) {
  // Force the link-time set empty (small threshold 0) and the promotion
  // threshold low: the loop function must start interpreted and get
  // promoted to native by the self-fuel poll.
  ::setenv("DSU_VTAL_NATIVE", "on", 1);
  ::setenv("DSU_VTAL_NATIVE_SMALL", "0", 1);
  ::setenv("DSU_VTAL_NATIVE_HOT_FUEL", "500", 1);

  Runtime RT;
  Updateable<int64_t(int64_t)> Burn =
      cantFail(RT.defineUpdateable("app.burn", &squareV1));
  Expected<Patch> P = loadVtalPatch(RT.types(), RT.exports(), R"dsu(
(patch
  (id "burn-promote-native")
  (description "hot loop, promoted by the self-fuel poll")
  (provides
    (fn (name "app.burn")
        (type "fn(int) -> int")
        (vtal-fn "burn")))
  (vtal-module
"module burn_mod
func burn (n: int) -> int {
  locals (acc: int, i: int)
  push.i 0
  store acc
  load n
  store i
loop:
  load i
  push.i 0
  le
  brif done
  load acc
  load i
  add
  store acc
  load i
  push.i 1
  sub
  store i
  br loop
done:
  load acc
  ret
}"))
)dsu");
  ::unsetenv("DSU_VTAL_NATIVE");
  ::unsetenv("DSU_VTAL_NATIVE_SMALL");
  ::unsetenv("DSU_VTAL_NATIVE_HOT_FUEL");
  ASSERT_TRUE(P) << P.takeError().str();
  // Nothing qualified at link time.
  EXPECT_EQ(P->Unit.Provides[0].Code.NativeEntry, nullptr);
  ASSERT_FALSE(RT.applyNow(std::move(*P)));

  uint64_t CompiledBefore = NativeStats::instance().FunctionsCompiled.load(
      std::memory_order_relaxed);
  // Each call burns ~600 fuel (> the 500 threshold after one call); the
  // promotion poll runs every 1024 entry calls.
  int64_t Want = 0;
  for (int64_t I = 1; I <= 100; ++I)
    Want += I;
  for (int Call = 0; Call != 1100; ++Call)
    ASSERT_EQ(Burn(100), Want);
  EXPECT_GT(NativeStats::instance().FunctionsCompiled.load(
                std::memory_order_relaxed),
            CompiledBefore)
      << "hot function was never promoted";
  // And the promoted code must agree with what the interpreter computed.
  EXPECT_EQ(Burn(100), Want);
  EXPECT_EQ(Burn(7), 28);

  // The /admin/profile surface reflects the tier flip.
  bool SawNativeTier = false;
  for (const trace::HotFn &F : trace::ProfileRegistry::instance().ranking(0))
    if (F.Fn == "burn" && F.Tier == 1)
      SawNativeTier = true;
  EXPECT_TRUE(SawNativeTier);
}

#endif // DSU_VTAL_NO_NATIVE
