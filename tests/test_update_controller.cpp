//===- tests/test_update_controller.cpp - Concurrent staging ---*- C++ -*-//
///
/// The transactional update API under concurrency: N threads stage
/// patches through the UpdateController while an update thread drains
/// update points (and, in the live test, while the FlashEd event loop
/// serves real traffic and commits at its idle hook).  Asserts the FIFO
/// commit guarantee and that no transaction is lost or double-applied.

#include "flashed/App.h"
#include "flashed/Client.h"
#include "flashed/Patches.h"
#include "flashed/Server.h"
#include "patch/PatchBuilder.h"
#include "runtime/UpdateController.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace dsu;
using namespace dsu::flashed;

namespace {

int64_t baseFn(int64_t X) { return X; }

/// Each patch version k provides a closure returning k, so the final
/// binding reveals which transaction committed last.
Patch makeCounterPatch(Runtime &RT, const std::string &Slot, int64_t K) {
  return cantFail(
      PatchBuilder(RT.types(), Slot + "-v" + std::to_string(K))
          .provideBinding(Slot,
                          RT.types().fnType({RT.types().intType()},
                                            RT.types().intType()),
                          makeClosureBinding<int64_t, int64_t>(
                              [K](int64_t) { return K; }, 0, "test"))
          .build());
}

TEST(UpdateControllerTest, ConcurrentStagersFifoNoLostNoDouble) {
  Runtime RT;
  constexpr unsigned Threads = 4;
  constexpr unsigned PerThread = 25;
  for (unsigned T = 0; T != Threads; ++T)
    cantFail(RT.defineUpdateable(
        ("app.f" + std::to_string(T)).c_str(), &baseFn));

  UpdateController &Ctl = RT.controller();

  // Submission order is serialized here so the expected FIFO order is
  // known; staging itself happens on the controller's worker while the
  // update thread commits concurrently.
  std::atomic<bool> Stop{false};
  std::thread Updater([&] {
    while (!Stop.load())
      RT.updatePoint();
    RT.updatePoint(); // drain the tail
  });

  std::vector<uint64_t> SubmittedIds;
  std::mutex SubmitLock;
  std::vector<std::thread> Stagers;
  for (unsigned T = 0; T != Threads; ++T)
    Stagers.emplace_back([&, T] {
      std::string Slot = "app.f" + std::to_string(T);
      for (unsigned K = 1; K <= PerThread; ++K) {
        Patch P = makeCounterPatch(RT, Slot, K);
        std::lock_guard<std::mutex> G(SubmitLock);
        StagedUpdate U = Ctl.stagePatch(std::move(P));
        SubmittedIds.push_back(U.id());
      }
    });
  for (std::thread &S : Stagers)
    S.join();
  Ctl.waitIdle();
  Stop.store(true);
  Updater.join();

  // No lost updates, no double applies.
  EXPECT_EQ(RT.updatesApplied(), Threads * PerThread);
  auto Log = RT.updateLog();
  ASSERT_EQ(Log.size(), Threads * PerThread);

  // FIFO: the log's committed order is exactly submission order.
  ASSERT_EQ(SubmittedIds.size(), Log.size());
  for (size_t I = 0; I != Log.size(); ++I) {
    EXPECT_EQ(Log[I].TxId, SubmittedIds[I]) << "at " << I;
    EXPECT_TRUE(Log[I].Succeeded) << Log[I].FailureReason;
  }

  // Every slot ends at its last-submitted version, and version counts
  // show exactly PerThread rebinds (initial + one per patch).
  for (unsigned T = 0; T != Threads; ++T) {
    auto H = cantFail(bindUpdateable<int64_t(int64_t)>(
        RT.updateables(), RT.types(), "app.f" + std::to_string(T)));
    EXPECT_EQ(H(0), PerThread);
    EXPECT_EQ(H.version(), PerThread + 1);
    EXPECT_EQ(H.slot()->historySize(), PerThread + 1);
  }
}

TEST(UpdateControllerTest, StagingBlocksLaterReadyTransactions) {
  // A transaction still staging at the queue's front must delay a later,
  // already-ready one: commit order is submission order, not
  // staging-completion order.  Simulated by submitting an artifact that
  // takes measurably long to stage (parse + assemble + verify) followed
  // by an instant in-process patch.
  Runtime RT;
  FlashedApp App(RT);
  DocStore Docs;
  Docs.put("/x.html", "x");
  ASSERT_FALSE(App.init(std::move(Docs)));
  UpdateController &Ctl = RT.controller();

  StagedUpdate Slow =
      Ctl.stageArtifactText(vtalParseFixPatchText(), "test-artifact");
  StagedUpdate Fast = Ctl.stagePatch(cantFail(makePatchP2(App), "P2"));
  Ctl.waitIdle();
  EXPECT_EQ(RT.updatePoint(), 2u);
  auto Log = RT.updateLog();
  ASSERT_EQ(Log.size(), 2u);
  EXPECT_EQ(Log[0].TxId, Slow.id());
  EXPECT_EQ(Log[1].TxId, Fast.id());
  EXPECT_GT(Log[0].InstructionsVerified, 0u);
}

TEST(UpdateControllerTest, MalformedArtifactBecomesStageFailed) {
  Runtime RT;
  UpdateController &Ctl = RT.controller();
  StagedUpdate U = Ctl.stageArtifactText("(this is not a patch", "bogus");
  Ctl.waitIdle();
  EXPECT_EQ(U.phase(), UpdatePhase::StageFailed);
  EXPECT_EQ(RT.updatePoint(), 0u); // collected, nothing committed
  auto Log = RT.updateLog();
  ASSERT_EQ(Log.size(), 1u);
  EXPECT_EQ(Log[0].Phase, "stage-failed");
  EXPECT_FALSE(Log[0].FailureReason.empty());
}

/// The live scenario: FlashEd serves requests on its event loop while
/// patches are staged asynchronously and committed at the idle hook.
TEST(UpdateControllerTest, StagingUnderLiveTrafficCommitsAtIdleHook) {
  Runtime RT;
  FlashedApp App(RT);
  DocStore Docs;
  Docs.put("/index.html", "<html>home</html>");
  Docs.put("/doc.html", "<html>doc</html>");
  Docs.fillSynthetic(8, 512);
  ASSERT_FALSE(App.init(std::move(Docs)));

  Server Srv([&App](const RequestHead &Head, std::string_view Raw,
                    std::string &Out, SharedBody &Body) {
    App.handleInto(Head, Raw, Out, Body);
  });
  Srv.setIdleHook([&RT] { RT.updatePoint(); });
  ASSERT_FALSE(Srv.listenOn(0));
  std::atomic<bool> Stop{false};
  std::thread Loop([&] {
    Error E = Srv.runUntil([&] { return Stop.load(); }, 5);
    EXPECT_FALSE(E) << E.str();
  });

  // Continuous traffic on one thread...
  std::atomic<bool> TrafficStop{false};
  std::atomic<uint64_t> Non200{0};
  std::thread Traffic([&] {
    KeepAliveClient C;
    ASSERT_FALSE(C.connectTo(Srv.port()));
    unsigned I = 0;
    while (!TrafficStop.load()) {
      Expected<FetchResult> R =
          C.get("/doc" + std::to_string(I++ % 8) + ".html");
      if (!R || R->Status != 200)
        Non200.fetch_add(1);
    }
  });

  // ...while the whole P1..P5 series is staged asynchronously from this
  // thread.  The cache keeps mutating under traffic, so P3's staged
  // swap may go stale and rebuild — that path is exercised live here.
  UpdateController &Ctl = RT.controller();
  std::vector<StagedUpdate> Handles;
  Expected<std::vector<Patch>> Series = makePatchSeries(App);
  ASSERT_TRUE(Series) << Series.takeError().str();
  for (Patch &P : *Series)
    Handles.push_back(Ctl.stagePatch(std::move(P)));
  Ctl.waitIdle();

  // Commits happen at the server's idle hook, not on this thread.
  for (int Spin = 0; Spin != 500 && RT.updatesApplied() < 5; ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(RT.updatesApplied(), 5u);
  for (size_t I = 0; I != Handles.size(); ++I)
    EXPECT_EQ(Handles[I].phase(), UpdatePhase::Committed) << "P" << I + 1;

  TrafficStop.store(true);
  Traffic.join();
  EXPECT_EQ(Non200.load(), 0u); // zero downtime across five live updates

  // FIFO survived the live loop.
  auto Log = RT.updateLog();
  ASSERT_EQ(Log.size(), 5u);
  for (size_t I = 0; I != 5; ++I)
    EXPECT_EQ(Log[I].TxId, Handles[I].id());

  // Post-evolution behaviour over the wire.
  Expected<FetchResult> R = httpGet(Srv.port(), "/doc.html?q=1");
  ASSERT_TRUE(R);
  EXPECT_EQ(R->Status, 200); // P1's query fix is live

  Stop.store(true);
  Loop.join();
}

} // namespace
