//===- tests/test_manifest.cpp - Patch manifest tests ---------*- C++ -*-===//

#include "patch/Manifest.h"
#include "patch/Generator.h"

#include <gtest/gtest.h>

using namespace dsu;

namespace {

const char *FullManifest = R"dsu(
(patch
  (id "P3-cache-entry-v2")
  (description "cache entries gain hit counters")
  (requires
    (symbol "now_ms" "fn() -> int")
    (symbol "docs_get" "fn(string) -> string"))
  (provides
    (fn (name "cache_lookup")
        (type "fn(string) -> string")
        (native-symbol "dsu_p3_cache_lookup"))
    (fn (name "cache_stats")
        (type "fn() -> string")
        (vtal-fn "cache_stats")))
  (new-types
    (type (name "%cache_entry@2")
          (repr "{path: string, body: string, hits: int}")))
  (transformers
    (transform (from "%cache_entry@1") (to "%cache_entry@2")
               (impl "xform_cache_entry_1_2")))
  (vtal-module "module m\nfunc cache_stats () -> string {\npush.s \"x\"\nret\n}")
  (warnings "manual review: eviction policy"))
)dsu";

TEST(ManifestTest, ParsesAllSections) {
  Expected<PatchManifest> M = PatchManifest::parse(FullManifest);
  ASSERT_TRUE(M) << M.error().str();
  EXPECT_EQ(M->Id, "P3-cache-entry-v2");
  EXPECT_EQ(M->Description, "cache entries gain hit counters");
  ASSERT_EQ(M->Requires.size(), 2u);
  EXPECT_EQ(M->Requires[0].Name, "now_ms");
  EXPECT_EQ(M->Requires[0].TypeText, "fn() -> int");
  ASSERT_EQ(M->Provides.size(), 2u);
  EXPECT_EQ(M->Provides[0].NativeSymbol, "dsu_p3_cache_lookup");
  EXPECT_TRUE(M->Provides[0].VtalFn.empty());
  EXPECT_EQ(M->Provides[1].VtalFn, "cache_stats");
  ASSERT_EQ(M->NewTypes.size(), 1u);
  EXPECT_EQ(M->NewTypes[0].Name, "%cache_entry@2");
  ASSERT_EQ(M->Transformers.size(), 1u);
  EXPECT_EQ(M->Transformers[0].Impl, "xform_cache_entry_1_2");
  EXPECT_FALSE(M->VtalText.empty());
  ASSERT_EQ(M->Warnings.size(), 1u);
}

TEST(ManifestTest, PrintParsesBack) {
  Expected<PatchManifest> M = PatchManifest::parse(FullManifest);
  ASSERT_TRUE(M);
  Expected<PatchManifest> Back = PatchManifest::parse(M->print());
  ASSERT_TRUE(Back) << Back.error().str();
  EXPECT_EQ(Back->Id, M->Id);
  EXPECT_EQ(Back->Requires.size(), M->Requires.size());
  EXPECT_EQ(Back->Provides.size(), M->Provides.size());
  EXPECT_EQ(Back->NewTypes.size(), M->NewTypes.size());
  EXPECT_EQ(Back->Transformers.size(), M->Transformers.size());
  EXPECT_EQ(Back->VtalText, M->VtalText);
  EXPECT_EQ(Back->Warnings, M->Warnings);
  // Printing is a fixed point after one round.
  EXPECT_EQ(Back->print(), M->print());
}

TEST(ManifestTest, MinimalManifest) {
  Expected<PatchManifest> M = PatchManifest::parse(
      R"((patch (id "tiny") (provides (fn (name "f") (type "fn() -> unit")
          (native-symbol "s")))))");
  ASSERT_TRUE(M) << M.error().str();
  EXPECT_EQ(M->Provides.size(), 1u);
}

struct BadManifest {
  const char *Name;
  const char *Text;
};

class ManifestErrors : public ::testing::TestWithParam<BadManifest> {};

TEST_P(ManifestErrors, Rejected) {
  Expected<PatchManifest> M = PatchManifest::parse(GetParam().Text);
  EXPECT_FALSE(M) << "accepted: " << GetParam().Name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ManifestErrors,
    ::testing::Values(
        BadManifest{"not_sexpr", "patch id x"},
        BadManifest{"wrong_head", "(fix (id \"x\"))"},
        BadManifest{"missing_id", "(patch (description \"d\"))"},
        BadManifest{"provide_no_name",
                    "(patch (id \"x\") (provides (fn (type \"fn() -> "
                    "unit\") (native-symbol \"s\"))))"},
        BadManifest{"provide_no_code",
                    "(patch (id \"x\") (provides (fn (name \"f\") (type "
                    "\"fn() -> unit\"))))"},
        BadManifest{"symbol_arity",
                    "(patch (id \"x\") (requires (symbol \"only-name\")))"},
        BadManifest{"type_no_repr",
                    "(patch (id \"x\") (new-types (type (name "
                    "\"%t@2\"))))"},
        BadManifest{"transform_incomplete",
                    "(patch (id \"x\") (transformers (transform (from "
                    "\"%t@1\") (to \"%t@2\"))))"}),
    [](const ::testing::TestParamInfo<BadManifest> &Info) {
      return Info.param.Name;
    });

// --- VersionManifest ------------------------------------------------------

const char *VmText = R"dsu(
(version-manifest
  (program "flashed")
  (version 2)
  (functions
    (fn (name "parse") (type "fn(string) -> string")
        (body-hash "aaaa") (impl "sym_parse"))
    (fn (name "mime") (type "fn(string) -> string") (body-hash "bbbb")))
  (types
    (type (name "%cache@1") (repr "{p: string, b: string}"))))
)dsu";

TEST(VersionManifestTest, Parses) {
  Expected<VersionManifest> M = VersionManifest::parse(VmText);
  ASSERT_TRUE(M) << M.error().str();
  EXPECT_EQ(M->Program, "flashed");
  EXPECT_EQ(M->Version, 2u);
  ASSERT_EQ(M->Functions.size(), 2u);
  EXPECT_EQ(M->Functions[0].Impl, "sym_parse");
  ASSERT_EQ(M->Types.size(), 1u);
  ASSERT_NE(M->findFunction("parse"), nullptr);
  EXPECT_EQ(M->findFunction("ghost"), nullptr);
}

TEST(VersionManifestTest, PrintRoundTrip) {
  Expected<VersionManifest> M = VersionManifest::parse(VmText);
  ASSERT_TRUE(M);
  Expected<VersionManifest> Back = VersionManifest::parse(M->print());
  ASSERT_TRUE(Back) << Back.error().str();
  EXPECT_EQ(Back->Program, M->Program);
  EXPECT_EQ(Back->Version, M->Version);
  EXPECT_EQ(Back->Functions.size(), M->Functions.size());
  EXPECT_EQ(Back->Types.size(), M->Types.size());
}

TEST(VersionManifestTest, Rejects) {
  EXPECT_FALSE(VersionManifest::parse("(wrong)"));
  EXPECT_FALSE(VersionManifest::parse("(version-manifest (version 1))"));
  EXPECT_FALSE(VersionManifest::parse(
      "(version-manifest (program \"p\") (functions (fn (name \"f\"))))"));
}

} // namespace
