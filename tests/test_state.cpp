//===- tests/test_state.cpp - State transformation tests ------*- C++ -*-===//
///
/// Exercises the two-phase migration engine: all-or-nothing semantics,
/// transformer chaining, and cell selection by type mention.

#include "state/StateCell.h"
#include "state/Transform.h"
#include "types/TypeParser.h"

#include <gtest/gtest.h>

using namespace dsu;

namespace {

struct RecV1 {
  int64_t Value;
};
struct RecV2 {
  int64_t Value;
  int64_t Flags;
};
struct RecV3 {
  int64_t Value;
  int64_t Flags;
  std::string Label;
};

class StateTest : public ::testing::Test {
protected:
  const Type *named(const char *Name, uint32_t V) {
    return Ctx.namedType(Name, V);
  }

  VersionBump bump(const char *Name, uint32_t From, uint32_t To) {
    return VersionBump{VersionedName{Name, From}, VersionedName{Name, To}};
  }

  TransformFn recV1toV2() {
    return [](const std::shared_ptr<void> &Old,
              const StateCell &) -> Expected<std::shared_ptr<void>> {
      auto *V1 = static_cast<RecV1 *>(Old.get());
      return std::shared_ptr<void>(
          std::make_shared<RecV2>(RecV2{V1->Value, 0}));
    };
  }

  TransformFn recV2toV3() {
    return [](const std::shared_ptr<void> &Old,
              const StateCell &) -> Expected<std::shared_ptr<void>> {
      auto *V2 = static_cast<RecV2 *>(Old.get());
      return std::shared_ptr<void>(
          std::make_shared<RecV3>(RecV3{V2->Value, V2->Flags, "migrated"}));
    };
  }

  TypeContext Ctx;
  StateRegistry State;
  TransformerRegistry Xforms;
};

TEST_F(StateTest, DefineLookupAccess) {
  Expected<StateCell *> C = State.define(
      "app.rec", named("rec", 1), std::make_shared<RecV1>(RecV1{42}));
  ASSERT_TRUE(C);
  EXPECT_EQ(State.size(), 1u);
  EXPECT_EQ(State.lookup("app.rec"), *C);
  EXPECT_EQ(State.lookup("ghost"), nullptr);
  EXPECT_EQ((*C)->get<RecV1>()->Value, 42);
  EXPECT_EQ((*C)->generation(), 1u);
  EXPECT_EQ((*C)->type()->str(), "%rec@1");
}

TEST_F(StateTest, DuplicateDefineFails) {
  ASSERT_TRUE(State.define("c", named("rec", 1),
                           std::make_shared<RecV1>(RecV1{1})));
  EXPECT_FALSE(State.define("c", named("rec", 1),
                            std::make_shared<RecV1>(RecV1{2})));
}

TEST_F(StateTest, BasicMigration) {
  StateCell *C = cantFail(State.define(
      "app.rec", named("rec", 1), std::make_shared<RecV1>(RecV1{42})));
  Xforms.add(bump("rec", 1, 2), recV1toV2());

  TransformStats Stats;
  ASSERT_FALSE(runStateTransform(Ctx, State, Xforms, {bump("rec", 1, 2)},
                                 &Stats));
  EXPECT_EQ(Stats.CellsExamined, 1u);
  EXPECT_EQ(Stats.CellsMigrated, 1u);
  EXPECT_EQ(C->type()->str(), "%rec@2");
  EXPECT_EQ(C->generation(), 2u);
  EXPECT_EQ(C->get<RecV2>()->Value, 42);
  EXPECT_EQ(C->get<RecV2>()->Flags, 0);
}

TEST_F(StateTest, MissingTransformerRejectsBeforeAnyWork) {
  StateCell *C = cantFail(State.define(
      "app.rec", named("rec", 1), std::make_shared<RecV1>(RecV1{42})));
  Error E = runStateTransform(Ctx, State, Xforms, {bump("rec", 1, 2)});
  ASSERT_TRUE(E);
  EXPECT_EQ(E.code(), ErrorCode::EC_Transform);
  EXPECT_EQ(C->type()->str(), "%rec@1");
  EXPECT_EQ(C->generation(), 1u);
}

TEST_F(StateTest, FailingTransformerLeavesAllCellsUntouched) {
  StateCell *A = cantFail(State.define(
      "a", named("rec", 1), std::make_shared<RecV1>(RecV1{1})));
  StateCell *B = cantFail(State.define(
      "b", named("rec", 1), std::make_shared<RecV1>(RecV1{2})));

  int Calls = 0;
  Xforms.add(bump("rec", 1, 2),
             [&Calls](const std::shared_ptr<void> &Old,
                      const StateCell &) -> Expected<std::shared_ptr<void>> {
               // First cell converts, second fails: the engine must
               // discard the first result too.
               if (++Calls == 1) {
                 auto *V1 = static_cast<RecV1 *>(Old.get());
                 return std::shared_ptr<void>(
                     std::make_shared<RecV2>(RecV2{V1->Value, 0}));
               }
               return Error::make(ErrorCode::EC_Transform, "boom");
             });

  Error E = runStateTransform(Ctx, State, Xforms, {bump("rec", 1, 2)});
  ASSERT_TRUE(E);
  EXPECT_EQ(Calls, 2);
  EXPECT_EQ(A->type()->str(), "%rec@1");
  EXPECT_EQ(B->type()->str(), "%rec@1");
  EXPECT_EQ(A->generation(), 1u);
  EXPECT_EQ(B->generation(), 1u);
  EXPECT_EQ(A->get<RecV1>()->Value, 1);
}

TEST_F(StateTest, ChainedBumpsCompose) {
  StateCell *C = cantFail(State.define(
      "app.rec", named("rec", 1), std::make_shared<RecV1>(RecV1{7})));
  Xforms.add(bump("rec", 1, 2), recV1toV2());
  Xforms.add(bump("rec", 2, 3), recV2toV3());

  // A single 1 -> 3 bump must decompose into the two registered steps.
  ASSERT_FALSE(runStateTransform(Ctx, State, Xforms, {bump("rec", 1, 3)}));
  EXPECT_EQ(C->type()->str(), "%rec@3");
  EXPECT_EQ(C->get<RecV3>()->Value, 7);
  EXPECT_EQ(C->get<RecV3>()->Label, "migrated");
}

TEST_F(StateTest, DirectTransformerBeatsChain) {
  StateCell *C = cantFail(State.define(
      "app.rec", named("rec", 1), std::make_shared<RecV1>(RecV1{7})));
  Xforms.add(bump("rec", 1, 2), recV1toV2());
  Xforms.add(bump("rec", 2, 3), recV2toV3());
  // Direct 1 -> 3 transformer takes priority over the chain.
  Xforms.add(bump("rec", 1, 3),
             [](const std::shared_ptr<void> &Old,
                const StateCell &) -> Expected<std::shared_ptr<void>> {
               auto *V1 = static_cast<RecV1 *>(Old.get());
               return std::shared_ptr<void>(std::make_shared<RecV3>(
                   RecV3{V1->Value, 99, "direct"}));
             });
  ASSERT_FALSE(runStateTransform(Ctx, State, Xforms, {bump("rec", 1, 3)}));
  EXPECT_EQ(C->get<RecV3>()->Label, "direct");
  EXPECT_EQ(C->get<RecV3>()->Flags, 99);
}

TEST_F(StateTest, IncompleteChainRejects) {
  cantFail(State.define("app.rec", named("rec", 1),
                        std::make_shared<RecV1>(RecV1{7})));
  Xforms.add(bump("rec", 1, 2), recV1toV2());
  // No 2 -> 3 step registered.
  Error E = runStateTransform(Ctx, State, Xforms, {bump("rec", 1, 3)});
  ASSERT_TRUE(E);
  EXPECT_NE(E.message().find("%rec@2 -> %rec@3"), std::string::npos);
}

TEST_F(StateTest, OnlyMentioningCellsMigrate) {
  StateCell *Rec = cantFail(State.define(
      "rec", named("rec", 1), std::make_shared<RecV1>(RecV1{1})));
  StateCell *Other = cantFail(State.define(
      "other", named("other", 1), std::make_shared<RecV1>(RecV1{2})));
  StateCell *Plain = cantFail(State.define(
      "plain", Ctx.intType(), std::make_shared<int64_t>(3)));

  Xforms.add(bump("rec", 1, 2), recV1toV2());
  TransformStats Stats;
  ASSERT_FALSE(runStateTransform(Ctx, State, Xforms, {bump("rec", 1, 2)},
                                 &Stats));
  EXPECT_EQ(Stats.CellsExamined, 3u);
  EXPECT_EQ(Stats.CellsMigrated, 1u);
  EXPECT_EQ(Rec->generation(), 2u);
  EXPECT_EQ(Other->generation(), 1u);
  EXPECT_EQ(Plain->generation(), 1u);
}

TEST_F(StateTest, StructuredCellTypesSubstitute) {
  // A cell whose type *mentions* the bumped name inside a container.
  Expected<const Type *> CellTy = parseType(Ctx, "array<%rec@1>");
  ASSERT_TRUE(CellTy);
  StateCell *C = cantFail(State.define(
      "recs", *CellTy,
      std::make_shared<std::vector<RecV1>>(
          std::vector<RecV1>{{1}, {2}, {3}})));

  Xforms.add(bump("rec", 1, 2),
             [](const std::shared_ptr<void> &Old,
                const StateCell &) -> Expected<std::shared_ptr<void>> {
               auto *V1 = static_cast<std::vector<RecV1> *>(Old.get());
               auto V2 = std::make_shared<std::vector<RecV2>>();
               for (const RecV1 &R : *V1)
                 V2->push_back(RecV2{R.Value, 0});
               return std::shared_ptr<void>(std::move(V2));
             });

  ASSERT_FALSE(runStateTransform(Ctx, State, Xforms, {bump("rec", 1, 2)}));
  EXPECT_EQ(C->type()->str(), "array<%rec@2>");
  auto *V2 = C->get<std::vector<RecV2>>();
  ASSERT_EQ(V2->size(), 3u);
  EXPECT_EQ((*V2)[2].Value, 3);
}

TEST_F(StateTest, EmptyBumpListIsNoop) {
  cantFail(State.define("rec", named("rec", 1),
                        std::make_shared<RecV1>(RecV1{1})));
  TransformStats Stats;
  ASSERT_FALSE(runStateTransform(Ctx, State, Xforms, {}, &Stats));
  EXPECT_EQ(Stats.CellsExamined, 0u);
}

TEST_F(StateTest, MigrateUnknownCellFails) {
  EXPECT_TRUE(State.migrate("ghost", Ctx.intType(),
                            std::make_shared<int64_t>(0)));
}

TEST_F(StateTest, TransformerRegistryReplaces) {
  int Which = 0;
  Xforms.add(bump("rec", 1, 2),
             [&Which](const std::shared_ptr<void> &Old,
                      const StateCell &) -> Expected<std::shared_ptr<void>> {
               Which = 1;
               return Old;
             });
  Xforms.add(bump("rec", 1, 2),
             [&Which](const std::shared_ptr<void> &Old,
                      const StateCell &) -> Expected<std::shared_ptr<void>> {
               Which = 2;
               return Old;
             });
  EXPECT_EQ(Xforms.size(), 1u);
  cantFail(State.define("rec", named("rec", 1),
                        std::make_shared<RecV1>(RecV1{1})));
  ASSERT_FALSE(runStateTransform(Ctx, State, Xforms, {bump("rec", 1, 2)}));
  EXPECT_EQ(Which, 2);
}

} // namespace
