//===- tests/test_vtal_resolve.cpp - Resolved execution form --*- C++ -*-===//
///
/// The load-time link pass (vtal/Resolve.h) and the frame-based engine it
/// feeds: call rewriting to indices, host-import binding by ordinal, the
/// depth limit on the explicit frame stack, clean rejection of unlinkable
/// modules, and the fuel-accounting regression against the pre-resolution
/// recursive engine.

#include "vtal/Assembler.h"
#include "vtal/Interp.h"
#include "vtal/Resolve.h"
#include "vtal/Verifier.h"

#include <gtest/gtest.h>

using namespace dsu;
using namespace dsu::vtal;

namespace {

Module mustAssemble(const char *Src) {
  Expected<Module> M = assemble(Src);
  EXPECT_TRUE(M) << M.error().str();
  return std::move(*M);
}

Module mustAssembleVerified(const char *Src) {
  Module M = mustAssemble(Src);
  Error E = verifyModule(M);
  EXPECT_FALSE(E) << E.str();
  return M;
}

// --- The link pass itself. ----------------------------------------------

TEST(ResolveTest, RewritesCallsToIndices) {
  Module M = mustAssembleVerified(R"(
module link
import host_a : (int) -> int
import host_b : () -> int
func leaf (x: int) -> int {
  load x
  ret
}
func caller (x: int) -> int {
  load x
  call leaf
  call host_a
  call host_b
  add
  ret
}
)");
  Expected<ResolvedModule> R = linkModule(M);
  ASSERT_TRUE(R) << R.error().str();
  ASSERT_EQ(R->Functions.size(), 2u);

  const ResolvedFunction &Caller = R->Functions[1];
  // call leaf -> CallFn #0, call host_a -> CallHost #0, host_b -> #1.
  ASSERT_EQ(Caller.Code.size(), 6u);
  EXPECT_EQ(Caller.Code[1].Op, Opcode::CallFn);
  EXPECT_EQ(Caller.Code[1].Index, 0u);
  EXPECT_EQ(Caller.Code[2].Op, Opcode::CallHost);
  EXPECT_EQ(Caller.Code[2].Index, 0u);
  EXPECT_EQ(Caller.Code[3].Op, Opcode::CallHost);
  EXPECT_EQ(Caller.Code[3].Index, 1u);
  // No unresolved Call survives the pass.
  for (const ResolvedFunction &F : R->Functions)
    for (const ResolvedInst &I : F.Code)
      EXPECT_NE(I.Op, Opcode::Call);
}

TEST(ResolveTest, InternsStringLiterals) {
  Module M = mustAssembleVerified(R"(
module pool
func f () -> string {
  push.s "dup"
  push.s "other"
  scat
  push.s "dup"
  scat
  ret
}
)");
  Expected<ResolvedModule> R = linkModule(M);
  ASSERT_TRUE(R) << R.error().str();
  // "dup" is pooled once; two literals total.
  EXPECT_EQ(R->StrPool.size(), 2u);
  EXPECT_EQ(R->Functions[0].Code[0].Index,
            R->Functions[0].Code[3].Index);
}

TEST(ResolveTest, UnknownCalleeFailsToLink) {
  // Deliberately NOT verified: the verifier would reject this module,
  // but an unverified module must fail cleanly, not crash (the seed
  // engine dereferenced a null import here).
  Module M = mustAssemble(R"(
module bad
func f () -> int {
  call ghost
  ret
}
)");
  Expected<ResolvedModule> R = linkModule(M);
  ASSERT_FALSE(R);
  EXPECT_EQ(R.error().code(), ErrorCode::EC_Link);
  EXPECT_NE(R.error().message().find("unknown function 'ghost'"),
            std::string::npos);
}

TEST(ResolveTest, OutOfRangeLocalFailsToLink) {
  Module M;
  M.Name = "raw";
  Function F;
  F.Name = "f";
  F.Sig.Result = ValKind::VK_Int;
  Instruction Load;
  Load.Op = Opcode::Load;
  Load.Index = 3; // no locals exist
  F.Code.push_back(Load);
  Instruction Ret;
  Ret.Op = Opcode::Ret;
  F.Code.push_back(Ret);
  M.Functions.push_back(std::move(F));

  Expected<ResolvedModule> R = linkModule(M);
  ASSERT_FALSE(R);
  EXPECT_EQ(R.error().code(), ErrorCode::EC_Verify);
}

TEST(ResolveTest, ResolvedOpcodesRejectedByVerifierAndAssembler) {
  // A forged module carrying a pre-resolved call may not pass the
  // shipping surfaces.
  Module M;
  M.Name = "forged";
  Function F;
  F.Name = "f";
  F.Sig.Result = ValKind::VK_Unit;
  Instruction CallIdx;
  CallIdx.Op = Opcode::CallFn;
  CallIdx.Index = 0;
  F.Code.push_back(CallIdx);
  Instruction Ret;
  Ret.Op = Opcode::Ret;
  F.Code.push_back(Ret);
  M.Functions.push_back(std::move(F));

  Error E = verifyModule(M);
  ASSERT_TRUE(E);
  EXPECT_EQ(E.code(), ErrorCode::EC_Verify);
  EXPECT_NE(E.message().find("resolved call form"), std::string::npos);

  // The mnemonics are not assemblable either.
  Expected<Module> A = assemble("module m\nfunc f () -> unit {\n"
                                "call.fn #0\nret\n}\n");
  ASSERT_FALSE(A);
}

// --- The engine on unlinkable modules. ----------------------------------

TEST(ResolveInterpTest, UnknownCalleeIsLinkErrorAtCallTime) {
  Module M = mustAssemble(R"(
module bad
func ok () -> int {
  push.i 7
  ret
}
func f () -> int {
  call ghost
  ret
}
)");
  Interpreter I(M);
  // The whole module is rejected: resolution is a load-time property.
  Expected<Value> R = I.call("f", {});
  ASSERT_FALSE(R);
  EXPECT_EQ(R.error().code(), ErrorCode::EC_Link);
  Expected<Value> R2 = I.call("ok", {});
  ASSERT_FALSE(R2);
  EXPECT_EQ(R2.error().code(), ErrorCode::EC_Link);
}

// --- Host-import binding by ordinal. ------------------------------------

TEST(ResolveInterpTest, HostImportsBindByOrdinal) {
  Module M = mustAssembleVerified(R"(
module ords
import alpha : (int) -> int
import beta : (int) -> int
import gamma : (int) -> int
func pick (x: int) -> int {
  load x
  call beta
  ret
}
func all (x: int) -> int {
  load x
  call alpha
  call beta
  call gamma
  ret
}
)");
  Interpreter I(M);
  // Bind out of declaration order: dispatch must go by ordinal, not by
  // binding sequence.
  ASSERT_FALSE(I.bindImport("gamma", [](const std::vector<Value> &A)
                                -> Expected<Value> {
    return Value::makeInt(A[0].asInt() * 100);
  }));
  ASSERT_FALSE(I.bindImport("alpha", [](const std::vector<Value> &A)
                                -> Expected<Value> {
    return Value::makeInt(A[0].asInt() + 1);
  }));
  ASSERT_FALSE(I.bindImport("beta", [](const std::vector<Value> &A)
                                -> Expected<Value> {
    return Value::makeInt(A[0].asInt() * 10);
  }));

  Expected<Value> Pick = I.call("pick", {Value::makeInt(4)});
  ASSERT_TRUE(Pick) << Pick.error().str();
  EXPECT_EQ(Pick->asInt(), 40);
  // alpha(5)=6, beta(6)=60, gamma(60)=6000: order of application proves
  // each ordinal hit its own binding.
  Expected<Value> All = I.call("all", {Value::makeInt(5)});
  ASSERT_TRUE(All) << All.error().str();
  EXPECT_EQ(All->asInt(), 6000);
}

TEST(ResolveInterpTest, PartiallyBoundImportsStillTrapUnbound) {
  Module M = mustAssembleVerified(R"(
module part
import a : () -> int
import b : () -> int
func useb () -> int {
  call b
  ret
}
)");
  Interpreter I(M);
  ASSERT_FALSE(I.bindImport("a", [](const std::vector<Value> &)
                                -> Expected<Value> {
    return Value::makeInt(1);
  }));
  Expected<Value> R = I.call("useb", {});
  ASSERT_FALSE(R);
  EXPECT_EQ(R.error().code(), ErrorCode::EC_Link);
  EXPECT_NE(R.error().message().find("'b' was never bound"),
            std::string::npos);
}

// --- Depth limit on the explicit frame stack. ---------------------------

TEST(ResolveInterpTest, RecursionToExactlyTheDepthLimit) {
  // down(n) recurses n deep: the engine permits depth 256 (the seed's
  // MaxCallDepth) and rejects depth 257, from frame 0 of the activation.
  Module M = mustAssembleVerified(R"(
module deep
func down (n: int) -> int {
  load n
  push.i 0
  le
  brif base
  load n
  push.i 1
  sub
  call down
  push.i 1
  add
  ret
base:
  push.i 0
  ret
}
)");
  Interpreter I(M);
  Expected<Value> AtLimit = I.call("down", {Value::makeInt(256)});
  ASSERT_TRUE(AtLimit) << AtLimit.error().str();
  EXPECT_EQ(AtLimit->asInt(), 256);

  Expected<Value> Past = I.call("down", {Value::makeInt(257)});
  ASSERT_FALSE(Past);
  EXPECT_NE(Past.error().message().find("depth"), std::string::npos);

  // The failed activation must not poison the engine's reusable state.
  Expected<Value> Again = I.call("down", {Value::makeInt(10)});
  ASSERT_TRUE(Again) << Again.error().str();
  EXPECT_EQ(Again->asInt(), 10);
}

// --- Re-entrancy: a host function calling back into the engine. ---------

TEST(ResolveInterpTest, HostFunctionMayReenterInterpreter) {
  Module M = mustAssembleVerified(R"(
module reent
import echo : (int) -> int
func double (n: int) -> int {
  load n
  push.i 2
  mul
  ret
}
func outer (n: int) -> int {
  load n
  call echo
  push.i 1
  add
  ret
}
)");
  Interpreter I(M);
  ASSERT_FALSE(I.bindImport(
      "echo", [&I](const std::vector<Value> &A) -> Expected<Value> {
        // Re-enter the same interpreter mid-activation.
        return I.call("double", {A[0]});
      }));
  Expected<Value> R = I.call("outer", {Value::makeInt(5)});
  ASSERT_TRUE(R) << R.error().str();
  EXPECT_EQ(R->asInt(), 11);
}

// --- callIndex: the load-time-resolved entry path. ----------------------

TEST(ResolveInterpTest, CallIndexMatchesCallByName) {
  Module M = mustAssembleVerified(R"(
module byidx
func a () -> int {
  push.i 1
  ret
}
func b () -> int {
  push.i 2
  ret
}
)");
  Interpreter I(M);
  Expected<uint32_t> IdxB = I.functionIndex("b");
  ASSERT_TRUE(IdxB);
  Expected<Value> R = I.callIndex(*IdxB, {});
  ASSERT_TRUE(R);
  EXPECT_EQ(R->asInt(), 2);

  EXPECT_FALSE(I.functionIndex("ghost"));
  Expected<Value> Bad = I.callIndex(99, {});
  ASSERT_FALSE(Bad);
  EXPECT_EQ(Bad.error().code(), ErrorCode::EC_Invalid);
}

// --- Fuel regression against the pre-resolution engine. -----------------

TEST(ResolveInterpTest, FuelIdenticalToUnresolvedEngine) {
  // Golden values measured on the seed's recursive, name-resolving
  // interpreter for these exact modules (dsu-vtal run, seed commit):
  //   fact(0)=10  fact(1)=23  fact(10)=140
  //   fib(12)=4646  fib(15)=19726
  //   gcd(252,105)=39
  // Load-time resolution must not change fuel accounting by a single
  // instruction, or the update-duration experiments stop being
  // comparable across engine generations.
  Module Fact = mustAssembleVerified(R"(
module fact
func fact (n: int) -> int {
  locals (acc: int, i: int)
  push.i 1
  store acc
  push.i 1
  store i
loop:
  load i
  load n
  gt
  brif done
  load acc
  load i
  mul
  store acc
  load i
  push.i 1
  add
  store i
  br loop
done:
  load acc
  ret
}
)");
  Module Fib = mustAssembleVerified(R"(
module fib
func fib (n: int) -> int {
  load n
  push.i 2
  lt
  brif base
  load n
  push.i 1
  sub
  call fib
  load n
  push.i 2
  sub
  call fib
  add
  ret
base:
  load n
  ret
}
)");
  Module Gcd = mustAssembleVerified(R"(
module gcd
func gcd (a: int, b: int) -> int {
loop:
  load b
  push.i 0
  eq
  brif done
  load a
  load b
  rem
  load b
  store a
  store b
  br loop
done:
  load a
  ret
}
)");

  Interpreter FactI(Fact);
  struct {
    int64_t Arg;
    int64_t Want;
    uint64_t Fuel;
  } FactCases[] = {{0, 1, 10}, {1, 1, 23}, {10, 3628800, 140}};
  for (const auto &C : FactCases) {
    Expected<Value> R = FactI.call("fact", {Value::makeInt(C.Arg)});
    ASSERT_TRUE(R) << R.error().str();
    EXPECT_EQ(R->asInt(), C.Want);
    EXPECT_EQ(FactI.lastFuelUsed(), C.Fuel) << "fact(" << C.Arg << ")";
  }

  Interpreter FibI(Fib);
  Expected<Value> F12 = FibI.call("fib", {Value::makeInt(12)});
  ASSERT_TRUE(F12);
  EXPECT_EQ(F12->asInt(), 144);
  EXPECT_EQ(FibI.lastFuelUsed(), 4646u);
  Expected<Value> F15 = FibI.call("fib", {Value::makeInt(15)});
  ASSERT_TRUE(F15);
  EXPECT_EQ(F15->asInt(), 610);
  EXPECT_EQ(FibI.lastFuelUsed(), 19726u);

  Interpreter GcdI(Gcd);
  Expected<Value> G = GcdI.call("gcd", {Value::makeInt(252),
                                        Value::makeInt(105)});
  ASSERT_TRUE(G);
  EXPECT_EQ(G->asInt(), 21);
  EXPECT_EQ(GcdI.lastFuelUsed(), 39u);

  // Determinism across repeated calls and across engine instances.
  Interpreter FibI2(Fib);
  ASSERT_TRUE(FibI2.call("fib", {Value::makeInt(12)}));
  EXPECT_EQ(FibI2.lastFuelUsed(), 4646u);
}

} // namespace
