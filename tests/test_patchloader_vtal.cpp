//===- tests/test_patchloader_vtal.cpp - VTAL patch tests -----*- C++ -*-===//
///
/// The verified-code path: patches shipped as VTAL modules are machine-
/// checked before linking, call back into the program through typed host
/// exports, and can ship scalar state transformers.

#include "core/Runtime.h"
#include "patch/PatchLoader.h"
#include "support/MemoryBuffer.h"
#include "types/TypeParser.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace dsu;

namespace {

int64_t doubleV1(int64_t X) { return 2 * X; }

class VtalPatchTest : public ::testing::Test {
protected:
  void SetUp() override {
    Double = cantFail(RT.defineUpdateable("app.double", &doubleV1));
    cantFail(RT.exportHost(
        "app.offset", RT.types().fnType({}, RT.types().intType()),
        [this](const std::vector<vtal::Value> &) -> Expected<vtal::Value> {
          return vtal::Value::makeInt(Offset);
        }));
  }

  Runtime RT;
  Updateable<int64_t(int64_t)> Double;
  int64_t Offset = 7;
};

const char *TripleManifest = R"dsu(
(patch
  (id "double-v2-vtal")
  (description "double becomes triple-plus-offset, via verified VTAL")
  (provides
    (fn (name "app.double")
        (type "fn(int) -> int")
        (vtal-fn "triple")))
  (vtal-module
"module triple_mod
import app.offset : () -> int
func triple (x: int) -> int {
  load x
  push.i 3
  mul
  call app.offset
  add
  ret
}"))
)dsu";

TEST_F(VtalPatchTest, LoadVerifyApply) {
  Expected<Patch> P =
      loadVtalPatch(RT.types(), RT.exports(), TripleManifest);
  ASSERT_TRUE(P) << P.takeError().str();
  ASSERT_TRUE(P->VtalMod);
  EXPECT_GT(P->CodeBytes, 0u);

  EXPECT_EQ(Double(10), 20);
  ASSERT_FALSE(RT.applyNow(std::move(*P)));
  EXPECT_EQ(Double(10), 37); // 3*10 + offset(7)

  // The host import is consulted live on every call.
  Offset = 100;
  EXPECT_EQ(Double(10), 130);

  auto Log = RT.updateLog();
  ASSERT_EQ(Log.size(), 1u);
  EXPECT_TRUE(Log[0].Succeeded);
  EXPECT_GT(Log[0].InstructionsVerified, 0u);
}

TEST_F(VtalPatchTest, IllTypedModuleRejectedAtVerify) {
  // The module type-confuses a string into integer addition; assembling
  // succeeds, verification must fail during apply.
  const char *Bad = R"dsu(
(patch
  (id "evil")
  (provides (fn (name "app.double") (type "fn(int) -> int")
                (vtal-fn "evil")))
  (vtal-module
"module evil_mod
func evil (x: int) -> int {
  push.s \"boom\"
  load x
  add
  ret
}"))
)dsu";
  Expected<Patch> P = loadVtalPatch(RT.types(), RT.exports(), Bad);
  ASSERT_TRUE(P) << P.takeError().str(); // loading is not trusting
  Error E = RT.applyNow(std::move(*P));
  ASSERT_TRUE(E);
  EXPECT_EQ(E.code(), ErrorCode::EC_Verify);
  EXPECT_EQ(Double(10), 20);
  EXPECT_EQ(Double.version(), 1u);
}

TEST_F(VtalPatchTest, DeclaredTypeMustMatchCode) {
  const char *Mismatch = R"dsu(
(patch
  (id "liar")
  (provides (fn (name "app.double") (type "fn(int) -> int")
                (vtal-fn "f")))
  (vtal-module
"module m
func f (x: string) -> string {
  load x
  ret
}"))
)dsu";
  Expected<Patch> P = loadVtalPatch(RT.types(), RT.exports(), Mismatch);
  ASSERT_FALSE(P);
  EXPECT_EQ(P.error().code(), ErrorCode::EC_TypeMismatch);
}

TEST_F(VtalPatchTest, UnknownImportRejectedAtLoad) {
  const char *Bad = R"dsu(
(patch
  (id "ghost-import")
  (provides (fn (name "app.double") (type "fn(int) -> int")
                (vtal-fn "f")))
  (vtal-module
"module m
import no.such.host : () -> int
func f (x: int) -> int {
  call no.such.host
  ret
}"))
)dsu";
  Expected<Patch> P = loadVtalPatch(RT.types(), RT.exports(), Bad);
  ASSERT_FALSE(P);
  EXPECT_EQ(P.error().code(), ErrorCode::EC_Link);
}

TEST_F(VtalPatchTest, ImportTypeMismatchRejectedAtLoad) {
  const char *Bad = R"dsu(
(patch
  (id "bad-import-type")
  (provides (fn (name "app.double") (type "fn(int) -> int")
                (vtal-fn "f")))
  (vtal-module
"module m
import app.offset : (int) -> int
func f (x: int) -> int {
  load x
  call app.offset
  ret
}"))
)dsu";
  Expected<Patch> P = loadVtalPatch(RT.types(), RT.exports(), Bad);
  ASSERT_FALSE(P);
  EXPECT_EQ(P.error().code(), ErrorCode::EC_TypeMismatch);
}

TEST_F(VtalPatchTest, MissingVtalFnRejected) {
  const char *Bad = R"dsu(
(patch
  (id "absent-fn")
  (provides (fn (name "app.double") (type "fn(int) -> int")
                (vtal-fn "ghost")))
  (vtal-module "module m
func real (x: int) -> int {
  load x
  ret
}"))
)dsu";
  EXPECT_FALSE(loadVtalPatch(RT.types(), RT.exports(), Bad));
}

TEST_F(VtalPatchTest, ScalarStateTransformer) {
  TypeContext &Ctx = RT.types();
  cantFail(RT.defineNamedType({"gen", 1}, Ctx.intType()));
  StateCell *Cell =
      cantFail(RT.defineState("app.gen", Ctx.namedType("gen", 1),
                              std::make_shared<int64_t>(20)));

  const char *Xform = R"dsu(
(patch
  (id "gen-v2")
  (new-types (type (name "%gen@2") (repr "int")))
  (transformers
    (transform (from "%gen@1") (to "%gen@2") (impl "xform")))
  (vtal-module
"module m
func xform (old: int) -> int {
  load old
  push.i 100
  mul
  push.i 1
  add
  ret
}"))
)dsu";
  Expected<Patch> P = loadVtalPatch(Ctx, RT.exports(), Xform);
  ASSERT_TRUE(P) << P.takeError().str();
  ASSERT_FALSE(RT.applyNow(std::move(*P)));
  EXPECT_EQ(Cell->type()->str(), "%gen@2");
  EXPECT_EQ(*Cell->get<int64_t>(), 2001);
}

TEST_F(VtalPatchTest, BadTransformerShapeRejected) {
  const char *Bad = R"dsu(
(patch
  (id "bad-xform")
  (new-types (type (name "%gen@2") (repr "int")))
  (transformers
    (transform (from "%gen@1") (to "%gen@2") (impl "xform")))
  (vtal-module
"module m
func xform (a: int, b: int) -> int {
  load a
  load b
  add
  ret
}"))
)dsu";
  Expected<Patch> P = loadVtalPatch(RT.types(), RT.exports(), Bad);
  ASSERT_FALSE(P);
  EXPECT_EQ(P.error().code(), ErrorCode::EC_Unsupported);
}

TEST_F(VtalPatchTest, RoundTripThroughFile) {
  std::string Path = ::testing::TempDir() + "dsu_triple.dsup";
  ASSERT_FALSE(writeFile(Path, TripleManifest));
  ASSERT_FALSE(RT.requestUpdateFromFile(Path));
  EXPECT_EQ(RT.updatePoint(), 1u);
  EXPECT_EQ(Double(4), 19); // 12 + 7
  std::remove(Path.c_str());
}

TEST_F(VtalPatchTest, NoVtalModuleRejected) {
  EXPECT_FALSE(loadVtalPatch(RT.types(), RT.exports(),
                             "(patch (id \"x\"))"));
}

} // namespace
