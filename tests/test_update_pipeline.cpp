//===- tests/test_update_pipeline.cpp - End-to-end update tests -*- C++ -*-//
///
/// Drives dsu::Runtime through complete update cycles with in-process
/// patches: the verify -> link -> transform -> commit pipeline, update
/// points, rejection atomicity, and the update log.

#include "core/Runtime.h"
#include "patch/PatchBuilder.h"
#include "types/TypeParser.h"

#include <gtest/gtest.h>

using namespace dsu;

namespace {

int64_t factV1(int64_t N) { return N <= 1 ? 1 : N * factV1(N - 1); }

int64_t factV2(int64_t N) {
  int64_t Acc = 1;
  for (int64_t I = 2; I <= N; ++I)
    Acc *= I;
  return Acc;
}

int64_t brokenFact(int64_t) { return -1; }

struct CounterV1 {
  int64_t Count;
};
struct CounterV2 {
  int64_t Count;
  int64_t Resets;
};

class PipelineTest : public ::testing::Test {
protected:
  Runtime RT;
};

TEST_F(PipelineTest, CodeOnlyUpdateViaUpdatePoint) {
  auto Fact = cantFail(RT.defineUpdateable("app.fact", &factV1));
  EXPECT_EQ(Fact(5), 120);
  EXPECT_EQ(RT.updatePoint(), 0u); // nothing pending

  Patch P = cantFail(PatchBuilder(RT.types(), "fact-v2")
                         .describe("iterative factorial")
                         .provide("app.fact", &factV2)
                         .build());
  RT.requestUpdate(std::move(P));
  EXPECT_TRUE(RT.updatePending());
  // Not applied until the update point.
  EXPECT_EQ(Fact.version(), 1u);

  EXPECT_EQ(RT.updatePoint(), 1u);
  EXPECT_FALSE(RT.updatePending());
  EXPECT_EQ(Fact(5), 120);
  EXPECT_EQ(Fact.version(), 2u);
  EXPECT_EQ(RT.updatesApplied(), 1u);

  auto Log = RT.updateLog();
  ASSERT_EQ(Log.size(), 1u);
  EXPECT_TRUE(Log[0].Succeeded);
  EXPECT_EQ(Log[0].PatchId, "fact-v2");
  EXPECT_EQ(Log[0].ProvidesLinked, 1u);
  EXPECT_GE(Log[0].TotalMs, Log[0].LinkMs);
}

TEST_F(PipelineTest, ApplyNowBypassesQueue) {
  auto Fact = cantFail(RT.defineUpdateable("app.fact", &factV1));
  Patch P = cantFail(PatchBuilder(RT.types(), "fact-v2")
                         .provide("app.fact", &factV2)
                         .build());
  ASSERT_FALSE(RT.applyNow(std::move(P)));
  EXPECT_EQ(Fact.version(), 2u);
}

TEST_F(PipelineTest, UpdatePointRefusedInsideUpdateableCode) {
  // An updateable whose body calls back into the runtime's update point:
  // the update must be deferred, not applied re-entrantly.
  Runtime *RTP = &RT;
  unsigned AppliedInside = 0;
  auto Handle = cantFail(RT.defineUpdateableFn<int64_t>(
      "app.reentrant", [RTP, &AppliedInside]() -> int64_t {
        AppliedInside += RTP->updatePoint();
        return 1;
      }));

  Patch P = cantFail(PatchBuilder(RT.types(), "noop")
                         .provide("app.fact2", &factV2)
                         .build());
  RT.requestUpdate(std::move(P));
  EXPECT_EQ(Handle(), 1);
  EXPECT_EQ(AppliedInside, 0u);
  EXPECT_TRUE(RT.updatePending()); // still queued
  EXPECT_EQ(RT.updatePoint(), 1u); // applies at the outer safe point
}

TEST_F(PipelineTest, TypeChangeWithTransformer) {
  TypeContext &Ctx = RT.types();
  cantFail(RT.defineNamedType({"counter", 1},
                              *parseType(Ctx, "{count: int}")));
  StateCell *Cell = cantFail(RT.defineState(
      "app.counter", Ctx.namedType("counter", 1),
      std::make_shared<CounterV1>(CounterV1{41})));

  Patch P =
      cantFail(PatchBuilder(Ctx, "counter-v2")
                   .defineType({"counter", 2},
                               *parseType(Ctx, "{count: int, resets: int}"))
                   .transformer(
                       VersionBump{{"counter", 1}, {"counter", 2}},
                       [](const std::shared_ptr<void> &Old, const StateCell &)
                           -> Expected<std::shared_ptr<void>> {
                         auto *V1 = static_cast<CounterV1 *>(Old.get());
                         return std::shared_ptr<void>(
                             std::make_shared<CounterV2>(
                                 CounterV2{V1->Count, 0}));
                       })
                   .build());
  ASSERT_FALSE(RT.applyNow(std::move(P)));

  EXPECT_EQ(Cell->type()->str(), "%counter@2");
  EXPECT_EQ(Cell->get<CounterV2>()->Count, 41);
  auto Log = RT.updateLog();
  ASSERT_EQ(Log.size(), 1u);
  EXPECT_EQ(Log[0].CellsMigrated, 1u);
}

TEST_F(PipelineTest, BumpWithoutTransformerRejectedAtomically) {
  TypeContext &Ctx = RT.types();
  cantFail(RT.defineNamedType({"counter", 1},
                              *parseType(Ctx, "{count: int}")));
  StateCell *Cell = cantFail(RT.defineState(
      "app.counter", Ctx.namedType("counter", 1),
      std::make_shared<CounterV1>(CounterV1{41})));
  auto Fact = cantFail(RT.defineUpdateable("app.fact", &factV1));

  // Declares %counter@2 and replaces fact, but ships no transformer.
  Patch P = cantFail(
      PatchBuilder(Ctx, "bad-counter-v2")
          .defineType({"counter", 2},
                      *parseType(Ctx, "{count: int, resets: int}"))
          .provide("app.fact", &factV2)
          .build());
  Error E = RT.applyNow(std::move(P));
  ASSERT_TRUE(E);
  EXPECT_EQ(E.code(), ErrorCode::EC_Transform);

  // Nothing moved: state untouched AND code not rebound.
  EXPECT_EQ(Cell->type()->str(), "%counter@1");
  EXPECT_EQ(Fact.version(), 1u);
  auto Log = RT.updateLog();
  ASSERT_EQ(Log.size(), 1u);
  EXPECT_FALSE(Log[0].Succeeded);
  EXPECT_EQ(RT.updatesApplied(), 0u);
}

std::string wrongSigImpl(std::string S) { return S; }

TEST_F(PipelineTest, IncompatibleProvideRejected) {
  auto Fact = cantFail(RT.defineUpdateable("app.fact", &factV1));
  Patch P = cantFail(PatchBuilder(RT.types(), "bad-type")
                         .provide("app.fact", &wrongSigImpl)
                         .build());
  Error E = RT.applyNow(std::move(P));
  ASSERT_TRUE(E);
  EXPECT_EQ(E.code(), ErrorCode::EC_TypeMismatch);
  EXPECT_EQ(Fact(5), 120);
}

TEST_F(PipelineTest, FailedUpdateInQueueReportsDiagnostics) {
  cantFail(RT.defineUpdateable("app.fact", &factV1));
  Patch Bad = cantFail(PatchBuilder(RT.types(), "bad")
                           .provide("app.fact", &wrongSigImpl)
                           .build());
  Patch Good = cantFail(PatchBuilder(RT.types(), "good")
                            .provide("app.fact", &factV2)
                            .build());
  RT.requestUpdate(std::move(Bad));
  RT.requestUpdate(std::move(Good));
  EXPECT_EQ(RT.updatePoint(), 1u); // good applies, bad rejected
  auto Log = RT.updateLog();
  ASSERT_EQ(Log.size(), 2u);
  EXPECT_FALSE(Log[0].Succeeded);
  EXPECT_TRUE(Log[1].Succeeded);
}

TEST_F(PipelineTest, SuccessiveUpdatesAdvanceVersions) {
  auto Fact = cantFail(RT.defineUpdateable("app.fact", &factV1));
  for (unsigned I = 0; I != 5; ++I) {
    Patch P = cantFail(
        PatchBuilder(RT.types(), "fact-v" + std::to_string(I + 2))
            .provide("app.fact", I % 2 ? &factV2 : &brokenFact)
            .build());
    ASSERT_FALSE(RT.applyNow(std::move(P)));
  }
  EXPECT_EQ(Fact.version(), 6u);
  EXPECT_EQ(Fact.slot()->historySize(), 6u);
  EXPECT_EQ(RT.updatesApplied(), 5u);
  // Last applied was factV2 (I=4? no: I=4 -> brokenFact).
  EXPECT_EQ(Fact(5), -1);
}

TEST_F(PipelineTest, NewFunctionsBecomeBindable) {
  Patch P = cantFail(PatchBuilder(RT.types(), "adds-fn")
                         .provide("app.fact", &factV2)
                         .build());
  ASSERT_FALSE(RT.applyNow(std::move(P)));
  Expected<Updateable<int64_t(int64_t)>> H =
      bindUpdateable<int64_t(int64_t)>(RT.updateables(), RT.types(),
                                       "app.fact");
  ASSERT_TRUE(H);
  EXPECT_EQ((*H)(6), 720);
}

TEST_F(PipelineTest, EmptyPatchRejectedByBuilder) {
  EXPECT_FALSE(PatchBuilder(RT.types(), "empty").build());
}

TEST_F(PipelineTest, TransformerValidationInBuilder) {
  TypeContext &Ctx = RT.types();
  TransformFn Noop = [](const std::shared_ptr<void> &Old,
                        const StateCell &) -> Expected<std::shared_ptr<void>> {
    return Old;
  };
  // Crossing type names.
  EXPECT_FALSE(PatchBuilder(Ctx, "x")
                   .transformer({{"a", 1}, {"b", 2}}, Noop)
                   .build());
  // Non-increasing version.
  EXPECT_FALSE(PatchBuilder(Ctx, "x")
                   .transformer({{"a", 2}, {"a", 2}}, Noop)
                   .build());
  // Target type undefined anywhere.
  EXPECT_FALSE(PatchBuilder(Ctx, "x")
                   .transformer({{"a", 1}, {"a", 2}}, Noop)
                   .build());
  // OK when the patch itself defines the target.
  EXPECT_TRUE(PatchBuilder(Ctx, "x")
                  .defineType({"a", 2}, Ctx.intType())
                  .transformer({{"a", 1}, {"a", 2}}, Noop)
                  .build());
}

TEST_F(PipelineTest, RequestUpdateFromMissingFileFails) {
  EXPECT_TRUE(RT.requestUpdateFromFile("/nonexistent/patch.so"));
  EXPECT_TRUE(RT.requestUpdateFromFile("/nonexistent/patch.dsup"));
}

// --- The transactional surface -------------------------------------------

TEST_F(PipelineTest, StageThenCommitSplitsThePipeline) {
  auto Fact = cantFail(RT.defineUpdateable("app.fact", &factV1));
  Patch P = cantFail(PatchBuilder(RT.types(), "fact-v2")
                         .provide("app.fact", &factV2)
                         .build());

  Expected<StagedUpdate> U = RT.stage(std::move(P));
  ASSERT_TRUE(U) << U.takeError().str();
  // Staged but not committed: the program still runs v1, and nothing is
  // in the update log yet.
  EXPECT_EQ(U->phase(), UpdatePhase::Ready);
  EXPECT_EQ(Fact.version(), 1u);
  EXPECT_EQ(RT.updateLog().size(), 0u);
  UpdateRecord Staged = U->record();
  EXPECT_GT(Staged.StageMs, 0.0);
  EXPECT_EQ(Staged.CommitMs, 0.0);
  EXPECT_EQ(Staged.Phase, "ready");

  ASSERT_FALSE(U->commit());
  EXPECT_EQ(U->phase(), UpdatePhase::Committed);
  EXPECT_EQ(Fact.version(), 2u);
  auto Log = RT.updateLog();
  ASSERT_EQ(Log.size(), 1u);
  EXPECT_TRUE(Log[0].Succeeded);
  EXPECT_EQ(Log[0].Phase, "committed");
  EXPECT_GT(Log[0].StageMs, 0.0);
  EXPECT_GE(Log[0].TotalMs, Log[0].CommitMs);

  // A second commit of the same transaction is refused.
  Error E = U->commit();
  ASSERT_TRUE(E);
  EXPECT_EQ(E.code(), ErrorCode::EC_Invalid);
}

TEST_F(PipelineTest, AbortedTransactionNeverApplies) {
  auto Fact = cantFail(RT.defineUpdateable("app.fact", &factV1));
  Patch P = cantFail(PatchBuilder(RT.types(), "fact-v2")
                         .provide("app.fact", &factV2)
                         .build());
  StagedUpdate U = cantFail(RT.stage(std::move(P)));
  ASSERT_FALSE(RT.enqueue(U));
  EXPECT_TRUE(RT.updatePending());

  ASSERT_FALSE(U.abort());
  EXPECT_EQ(U.phase(), UpdatePhase::Aborted);
  // The aborted transaction is collected, not committed.
  EXPECT_EQ(RT.updatePoint(), 0u);
  EXPECT_EQ(Fact.version(), 1u);
  EXPECT_FALSE(RT.updatePending());
  auto Log = RT.updateLog();
  ASSERT_EQ(Log.size(), 1u);
  EXPECT_EQ(Log[0].Phase, "aborted");
  EXPECT_FALSE(Log[0].Succeeded);

  // Aborting again is idempotent; committing an aborted tx is refused.
  EXPECT_FALSE(U.abort());
  EXPECT_TRUE(U.commit());
}

TEST_F(PipelineTest, CommitRefusedInsideUpdateableCodeIsBusy) {
  auto Fact = cantFail(RT.defineUpdateable("app.fact", &factV1));
  (void)Fact;
  Patch P = cantFail(PatchBuilder(RT.types(), "fact-v2")
                         .provide("app.fact", &factV2)
                         .build());
  StagedUpdate U = cantFail(RT.stage(std::move(P)));

  Runtime *RTP = &RT;
  ErrorCode Seen = ErrorCode::EC_None;
  auto Handle = cantFail(RT.defineUpdateableFn<int64_t>(
      "app.reentrant", [&U, &Seen, RTP]() -> int64_t {
        // Inside an updateable frame the commit must be refused as
        // *busy* (retryable), naming the violated discipline — and so
        // must applyNow and rollback.
        Error E = U.commit();
        Seen = E.code();
        Error E2 = RTP->rollbackUpdateable("app.fact");
        return E2.code() == ErrorCode::EC_Busy ? 1 : 0;
      }));
  EXPECT_EQ(Handle(), 1);
  EXPECT_EQ(Seen, ErrorCode::EC_Busy);
  // Back at a quiescent point the same handle commits fine.
  ASSERT_FALSE(U.commit());
}

TEST_F(PipelineTest, DirectlyCommittedHandleDoesNotWedgeTheQueue) {
  // A transaction can be enqueued *and* committed directly through its
  // handle; the queue must collect the terminal entry instead of
  // blocking FIFO behind it forever.
  auto Fact = cantFail(RT.defineUpdateable("app.fact", &factV1));
  StagedUpdate A = cantFail(
      RT.stage(cantFail(PatchBuilder(RT.types(), "A")
                            .provide("app.fact", &factV2)
                            .build())));
  ASSERT_FALSE(RT.enqueue(A));
  ASSERT_FALSE(A.commit()); // jumped the queue via the handle
  RT.requestUpdate(cantFail(PatchBuilder(RT.types(), "B")
                                .provide("app.fact", &factV1)
                                .build()));
  EXPECT_EQ(RT.updatePoint(), 1u); // A collected, B committed
  EXPECT_EQ(RT.queueDepth(), 0u);
  EXPECT_EQ(Fact.version(), 3u);
  EXPECT_EQ(RT.updatesApplied(), 2u);
}

TEST_F(PipelineTest, StaleStagedPlanRevalidatesAtCommit) {
  auto Fact = cantFail(RT.defineUpdateable("app.fact", &factV1));
  // Stage A, then stage-and-commit B (same slot), then commit A: A's
  // plan was prepared against the pre-B registry, so the commit must
  // revalidate rather than commit a stale plan.
  StagedUpdate A = cantFail(
      RT.stage(cantFail(PatchBuilder(RT.types(), "A")
                            .provide("app.fact", &factV2)
                            .build())));
  StagedUpdate B = cantFail(
      RT.stage(cantFail(PatchBuilder(RT.types(), "B")
                            .provide("app.fact", &brokenFact)
                            .build())));
  ASSERT_FALSE(B.commit());
  EXPECT_EQ(Fact.version(), 2u);
  ASSERT_FALSE(A.commit());
  EXPECT_EQ(Fact.version(), 3u);
  EXPECT_EQ(Fact(5), 120); // A's factV2 behaviour won (committed last)
  EXPECT_EQ(RT.updatesApplied(), 2u);
}

TEST_F(PipelineTest, RollbackForcesStagedPlanRevalidation) {
  // A rollback is itself an update: a plan staged before it must not
  // commit unchecked.  Here the rollback reverts the slot's recorded
  // type, turning the staged (bump-free) plan into one that demands a
  // %rec@1 -> %rec@2 transformer nobody shipped.
  TypeContext &Ctx = RT.types();
  const Type *T1 = Ctx.fnType({Ctx.namedType("rec", 1)}, Ctx.unitType());
  const Type *T2 = Ctx.fnType({Ctx.namedType("rec", 2)}, Ctx.unitType());
  cantFail(RT.updateables().define(
      "app.g", T1, makeClosureBinding<void, int64_t>([](int64_t) {})));
  cantFail(RT.updateables().rebind(
      "app.g", T2, makeClosureBinding<void, int64_t>([](int64_t) {}),
      nullptr));

  StagedUpdate U = cantFail(RT.stage(cantFail(
      PatchBuilder(Ctx, "g-next")
          .provideBinding("app.g", T2,
                          makeClosureBinding<void, int64_t>([](int64_t) {}))
          .build())));
  ASSERT_FALSE(RT.rollbackUpdateable("app.g")); // slot type back to @1

  Error E = U.commit();
  ASSERT_TRUE(E);
  EXPECT_EQ(E.code(), ErrorCode::EC_Transform);
  EXPECT_EQ(RT.updateables().lookup("app.g")->type(), T1); // untouched
  EXPECT_EQ(U.phase(), UpdatePhase::CommitFailed);
}

TEST_F(PipelineTest, StaleStateSwapRebuildsAtCommit) {
  TypeContext &Ctx = RT.types();
  cantFail(RT.defineNamedType({"counter", 1},
                              *parseType(Ctx, "{count: int}")));
  StateCell *Cell = cantFail(RT.defineState(
      "app.counter", Ctx.namedType("counter", 1),
      std::make_shared<CounterV1>(CounterV1{41})));

  auto MakeV2 = [&] {
    return cantFail(
        PatchBuilder(Ctx, "counter-v2")
            .defineType({"counter", 2},
                        *parseType(Ctx, "{count: int, resets: int}"))
            .transformer(
                VersionBump{{"counter", 1}, {"counter", 2}},
                [](const std::shared_ptr<void> &Old, const StateCell &)
                    -> Expected<std::shared_ptr<void>> {
                  auto *V1 = static_cast<CounterV1 *>(Old.get());
                  return std::shared_ptr<void>(std::make_shared<CounterV2>(
                      CounterV2{V1->Count, 0}));
                })
            .build());
  };

  StagedUpdate U = cantFail(RT.stage(MakeV2()));
  // The program writes the cell *after* staging: the optimistic prebuilt
  // payload is now stale, and committing it would lose this write.
  {
    std::lock_guard<std::mutex> G(Cell->payloadLock());
    Cell->get<CounterV1>()->Count = 100;
    Cell->noteMutation();
  }
  ASSERT_FALSE(U.commit());

  // The commit detected the stale swap and rebuilt from live state: the
  // post-staging write survives the migration.
  EXPECT_EQ(Cell->type()->str(), "%counter@2");
  EXPECT_EQ(Cell->get<CounterV2>()->Count, 100);
  auto Log = RT.updateLog();
  ASSERT_EQ(Log.size(), 1u);
  EXPECT_TRUE(Log[0].StateRebuilt);
  EXPECT_EQ(Log[0].CellsMigrated, 1u);
}

TEST_F(PipelineTest, FreshStateSwapCommitsWithoutRebuild) {
  TypeContext &Ctx = RT.types();
  cantFail(RT.defineNamedType({"counter", 1},
                              *parseType(Ctx, "{count: int}")));
  StateCell *Cell = cantFail(RT.defineState(
      "app.counter", Ctx.namedType("counter", 1),
      std::make_shared<CounterV1>(CounterV1{41})));

  Patch P = cantFail(
      PatchBuilder(Ctx, "counter-v2")
          .defineType({"counter", 2},
                      *parseType(Ctx, "{count: int, resets: int}"))
          .transformer(
              VersionBump{{"counter", 1}, {"counter", 2}},
              [](const std::shared_ptr<void> &Old, const StateCell &)
                  -> Expected<std::shared_ptr<void>> {
                auto *V1 = static_cast<CounterV1 *>(Old.get());
                return std::shared_ptr<void>(std::make_shared<CounterV2>(
                    CounterV2{V1->Count, 0}));
              })
          .build());
  StagedUpdate U = cantFail(RT.stage(std::move(P)));
  ASSERT_FALSE(U.commit());
  EXPECT_EQ(Cell->get<CounterV2>()->Count, 41);
  auto Log = RT.updateLog();
  ASSERT_EQ(Log.size(), 1u);
  EXPECT_FALSE(Log[0].StateRebuilt); // the fast path: swaps, no rebuild
  EXPECT_GT(Log[0].BuildMs, 0.0);    // the build happened at stage time
}

} // namespace
