//===- tests/test_rolling_update.cpp - Barrier-free code-only updates -----===//
///
/// The rolling-commit path over a live reactor pool: a code-only patch
/// swings every worker with ZERO barrier parks and zero half-committed
/// two-binding responses; a state-migrating patch still takes the
/// global barrier; a worker stuck mid-request neither blocks a rolling
/// commit nor observes it mid-request; the stage->commit latency lands
/// within one poll timeout under idle load; and DocStore hot
/// replacement is safe with mutex-free readers.
///
/// Run alone with `ctest -L epoch`.

#include "flashed/App.h"
#include "flashed/Client.h"
#include "flashed/DocStore.h"
#include "flashed/Http.h"
#include "flashed/Patches.h"
#include "net/ReactorPool.h"
#include "patch/PatchBuilder.h"
#include "patch/PatchLoader.h"
#include "runtime/UpdateController.h"
#ifndef DSU_VTAL_NO_NATIVE
#include "epoch/Epoch.h"
#include "vtal/native/NativeImage.h"
#endif

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

using namespace dsu;
using namespace dsu::flashed;

namespace {

constexpr unsigned kWorkers = 3;

#define WAIT_FOR(Pred)                                                     \
  do {                                                                     \
    int Spin_ = 0;                                                         \
    while (!(Pred) && Spin_++ != 5000)                                     \
      std::this_thread::sleep_for(std::chrono::milliseconds(2));           \
    ASSERT_TRUE(Pred) << "timed out waiting for: " #Pred;                  \
  } while (0)

int64_t retOne(int64_t) { return 1; }
int64_t retTwo(int64_t) { return 2; }

/// Builds the code-only patch "pair-vN": both pipeline halves return N.
Expected<Patch> makePairPatch(Runtime &RT, int64_t N) {
  struct Box {
    static int64_t three(int64_t) { return 3; }
    static int64_t four(int64_t) { return 4; }
    static int64_t five(int64_t) { return 5; }
    static int64_t six(int64_t) { return 6; }
  };
  int64_t (*Fn)(int64_t) = nullptr;
  switch (N) {
  case 2:
    Fn = &retTwo;
    break;
  case 3:
    Fn = &Box::three;
    break;
  case 4:
    Fn = &Box::four;
    break;
  case 5:
    Fn = &Box::five;
    break;
  default:
    Fn = &Box::six;
    break;
  }
  return PatchBuilder(RT.types(), "pair-v" + std::to_string(N))
      .describe("code-only: both bindings move together")
      .provide("pair.first", Fn)
      .provide("pair.second", Fn)
      .build();
}

/// A state-migrating patch over an int cell (identity transformer).
Expected<Patch> makeMigratingPatch(Runtime &RT, const std::string &TyName,
                                   uint32_t FromV) {
  return makeIdentityBumpPatch(RT.types(), VersionedName{TyName, FromV},
                               RT.types().intType());
}

/// A bare two-updateable pool: the handler body is "<first>,<second>".
class RollingPoolTest : public ::testing::Test {
protected:
  void SetUp() override {
    auto F = RT.defineUpdateable("pair.first", &retOne);
    auto S = RT.defineUpdateable("pair.second", &retOne);
    ASSERT_TRUE(F);
    ASSERT_TRUE(S);
    First = *F;
    Second = *S;

    net::PoolOptions O;
    O.Workers = kWorkers;
    O.PollTimeoutMs = 2;
    Pool = std::make_unique<net::ReactorPool>(
        [this](const RequestHead &Head, std::string_view, std::string &Out,
               SharedBody &) {
          std::string Body = std::to_string(First(0)) + "," +
                             std::to_string(Second(0));
          appendHttpResponse(Out, 200, "text/plain", Body, Head.KeepAlive);
        },
        O);
    Pool->setUpdateRuntime(RT);
    ASSERT_FALSE(Pool->start());
  }

  void TearDown() override { Pool->stop(); }

  uint64_t totalParks() const {
    uint64_t N = 0;
    for (unsigned I = 0; I != Pool->workers(); ++I)
      N += Pool->workerStats(I).Pauses.load();
    return N;
  }

  Runtime RT;
  Updateable<int64_t(int64_t)> First, Second;
  std::unique_ptr<net::ReactorPool> Pool;
};

/// The acceptance bar: a whole series of code-only patches committed
/// under live multi-worker keep-alive load swings all workers with zero
/// barrier parks and zero torn (half-committed) responses.
TEST_F(RollingPoolTest, CodeOnlySeriesCommitsRollingWithZeroParks) {
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Consistent{0}, Torn{0};
  std::vector<std::thread> Loaders;
  for (unsigned T = 0; T != kWorkers; ++T)
    Loaders.emplace_back([&] {
      KeepAliveClient C;
      ASSERT_FALSE(C.connectTo(Pool->port()));
      while (!Stop.load()) {
        Expected<FetchResult> R = C.get("/pair");
        if (!R)
          break;
        size_t Comma = R->Body.find(',');
        if (Comma != std::string::npos &&
            R->Body.substr(0, Comma) == R->Body.substr(Comma + 1))
          Consistent.fetch_add(1);
        else
          Torn.fetch_add(1);
      }
    });

  WAIT_FOR(Consistent.load() >= 50);
  constexpr unsigned kPatches = 5; // v2..v6
  for (unsigned V = 2; V != 2 + kPatches; ++V) {
    Expected<Patch> P = makePairPatch(RT, V);
    ASSERT_TRUE(P) << P.takeError().str();
    RT.requestUpdate(std::move(*P));
    Pool->wake();
    WAIT_FOR(RT.updatesApplied() >= V - 1);
    // Keep load flowing across each swing.
    uint64_t Now = Consistent.load();
    WAIT_FOR(Consistent.load() >= Now + 20);
  }
  Stop.store(true);
  for (std::thread &T : Loaders)
    T.join();

  EXPECT_EQ(Torn.load(), 0u) << "a request saw a half-committed patch";
  EXPECT_EQ(RT.rollingCommits(), kPatches);
  EXPECT_EQ(RT.updatesApplied(), kPatches);
  EXPECT_EQ(Pool->barrierRounds(), 0u) << "a code-only patch armed the barrier";
  EXPECT_EQ(totalParks(), 0u) << "a worker parked for a rolling commit";

  // Every worker converges on the final generation.
  for (unsigned I = 0; I != 2 * kWorkers; ++I) {
    Expected<FetchResult> R = httpGet(Pool->port(), "/pair");
    ASSERT_TRUE(R);
    EXPECT_EQ(R->Body, "6,6");
  }

  // After the pool stops (workers deregistered), the redirection chains
  // are fully graced: one flush detaches them all.
  Pool->stop();
  RT.flushRetiredBindings();
  EXPECT_EQ(First.slot()->rollDepth(), 0u);
  EXPECT_EQ(Second.slot()->rollDepth(), 0u);
}

TEST_F(RollingPoolTest, StateMigratingPatchStillTakesTheBarrier) {
  ASSERT_FALSE(RT.defineNamedType(VersionedName{"rcell", 1},
                                  RT.types().intType()));
  Expected<StateCell *> Cell =
      RT.defineState("r.cell", RT.types().namedType("rcell", 1),
                     std::make_shared<int64_t>(7));
  ASSERT_TRUE(Cell) << Cell.takeError().str();

  Expected<Patch> P = makeMigratingPatch(RT, "rcell", 1);
  ASSERT_TRUE(P) << P.takeError().str();
  RT.requestUpdate(std::move(*P));
  Pool->wake();
  WAIT_FOR(RT.updatesApplied() >= 1);

  EXPECT_EQ(RT.rollingCommits(), 0u);
  EXPECT_GE(Pool->barrierRounds(), 1u);
  // Workers record their park *after* release; give them their wakeup.
  WAIT_FOR(totalParks() >= kWorkers);
  EXPECT_EQ((*Cell)->type()->str(), "%rcell@2");
}

/// FIFO across classes: a code-only patch ahead of a migrating patch
/// rolls first; the migrating one then barriers.  Order is preserved.
TEST_F(RollingPoolTest, MixedQueueRollsThenBarriers) {
  ASSERT_FALSE(RT.defineNamedType(VersionedName{"qcell", 1},
                                  RT.types().intType()));
  Expected<StateCell *> Cell =
      RT.defineState("q.cell", RT.types().namedType("qcell", 1),
                     std::make_shared<int64_t>(1));
  ASSERT_TRUE(Cell);

  Expected<Patch> Code = makePairPatch(RT, 2);
  Expected<Patch> Mig = makeMigratingPatch(RT, "qcell", 1);
  ASSERT_TRUE(Code);
  ASSERT_TRUE(Mig);
  RT.requestUpdate(std::move(*Code));
  RT.requestUpdate(std::move(*Mig));
  Pool->wake();
  WAIT_FOR(RT.updatesApplied() >= 2);

  EXPECT_EQ(RT.rollingCommits(), 1u);
  EXPECT_GE(Pool->barrierRounds(), 1u);
  std::vector<UpdateRecord> Log = RT.updateLog();
  ASSERT_GE(Log.size(), 2u);
  EXPECT_EQ(Log[Log.size() - 2].CommitMode, "rolling");
  EXPECT_EQ(Log[Log.size() - 1].CommitMode, "barrier");
}

/// A code-only VTAL patch whose functions the native tier compiles at
/// link time must behave exactly like any other code-only patch: it
/// commits rolling with zero barrier rounds and zero parks under live
/// load.  Superseded machine-code pages stay resident while the slot
/// lives (an in-flight worker may still be executing them — the PLDI
/// 2001 old-code-stays rule), and when the bindings finally release
/// they leave through the epoch domain, never a straight munmap.
/// (This is the TSan acceptance case: the `ctest -L epoch` binary runs
/// under the TSan CI lane.)
TEST(RollingNativeTest, NativeCodePatchRollsAndRetiresSupersededPages) {
#ifdef DSU_VTAL_NO_NATIVE
  GTEST_SKIP() << "native tier compiled out (DSU_VTAL_NATIVE=OFF)";
#else
  using vtal::native::NativeStats;
  NativeStats &S = NativeStats::instance();
  uint64_t RetiredBefore = S.ArenasRetired.load(std::memory_order_relaxed);
  uint64_t EntriesBefore = S.NativeEntries.load(std::memory_order_relaxed);

  {
    Runtime RT;
    auto F = RT.defineUpdateable("pair.first", &retOne);
    auto S2 = RT.defineUpdateable("pair.second", &retOne);
    ASSERT_TRUE(F);
    ASSERT_TRUE(S2);
    Updateable<int64_t(int64_t)> First = *F, Second = *S2;

    net::PoolOptions O;
    O.Workers = kWorkers;
    O.PollTimeoutMs = 2;
    net::ReactorPool Pool(
        [&](const RequestHead &Head, std::string_view, std::string &Out,
            SharedBody &) {
          std::string Body =
              std::to_string(First(0)) + "," + std::to_string(Second(0));
          appendHttpResponse(Out, 200, "text/plain", Body, Head.KeepAlive);
        },
        O);
    Pool.setUpdateRuntime(RT);
    ASSERT_FALSE(Pool.start());

    auto MakeVtalPair = [&](int64_t N) {
      std::string Id = "vtal-pair-v" + std::to_string(N);
      std::string Text = R"dsu(
(patch
  (id ")dsu" + Id + R"dsu(")
  (description "code-only VTAL pair, native-compiled at link")
  (provides
    (fn (name "pair.first")
        (type "fn(int) -> int")
        (vtal-fn "both"))
    (fn (name "pair.second")
        (type "fn(int) -> int")
        (vtal-fn "both")))
  (vtal-module
"module vtal_pair
func both (x: int) -> int {
  push.i )dsu" + std::to_string(N) + R"dsu(
  ret
}"))
)dsu";
      return loadVtalPatch(RT.types(), RT.exports(), Text);
    };

    std::atomic<bool> Stop{false};
    std::atomic<uint64_t> Served{0};
    std::vector<std::thread> Loaders;
    for (unsigned T = 0; T != kWorkers; ++T)
      Loaders.emplace_back([&] {
        KeepAliveClient C;
        ASSERT_FALSE(C.connectTo(Pool.port()));
        while (!Stop.load())
          if (C.get("/pair"))
            Served.fetch_add(1);
          else
            break;
      });
    WAIT_FOR(Served.load() >= 50);

    // Two generations: v7 supersedes the seed, v8 supersedes v7's
    // machine code while workers are still hitting the slot.
    for (int64_t V = 7; V != 9; ++V) {
      Expected<Patch> P = MakeVtalPair(V);
      ASSERT_TRUE(P) << P.takeError().str();
      // Both provides were baseline-compiled at link time.
      for (const ProvideRequest &Prov : P->Unit.Provides)
        EXPECT_NE(Prov.Code.NativeEntry, nullptr)
            << Prov.Name << " was not native-compiled";
      RT.requestUpdate(std::move(*P));
      Pool.wake();
      WAIT_FOR(RT.updatesApplied() >= static_cast<uint64_t>(V - 6));
      uint64_t Now = Served.load();
      WAIT_FOR(Served.load() >= Now + 20);
    }
    Stop.store(true);
    for (std::thread &T : Loaders)
      T.join();

    // Native-backed code-only patches take the rolling path, not the
    // barrier, and worker requests actually ran the machine code.
    EXPECT_EQ(RT.rollingCommits(), 2u);
    EXPECT_EQ(Pool.barrierRounds(), 0u)
        << "a native code-only patch armed the barrier";
    EXPECT_GT(S.NativeEntries.load(std::memory_order_relaxed),
              EntriesBefore);
    for (unsigned I = 0; I != kWorkers; ++I) {
      Expected<FetchResult> R = httpGet(Pool.port(), "/pair");
      ASSERT_TRUE(R);
      EXPECT_EQ(R->Body, "8,8");
    }

    // While the slots live, v7's superseded pages must still be
    // resident (a parked worker could hold a frame in them).
    EXPECT_EQ(S.ArenasRetired.load(std::memory_order_relaxed),
              RetiredBefore)
        << "superseded pages were reclaimed while the slot was live";
    Pool.stop();
    // Runtime teardown releases the binding history and with it both
    // VTAL instances' images.
  }
  EXPECT_GE(S.ArenasRetired.load(std::memory_order_relaxed),
            RetiredBefore + 2)
      << "superseded native pages were never epoch-retired";
  epoch::domain().reclaim();
#endif // DSU_VTAL_NO_NATIVE
}

/// A worker stuck mid-request must not delay a rolling commit (that is
/// the whole point) — and must not observe it mid-request either.
TEST(RollingStuckWorkerTest, RollingCommitLandsWhileAWorkerIsStuck) {
  Runtime RT;
  auto F = RT.defineUpdateable("pair.first", &retOne);
  auto S = RT.defineUpdateable("pair.second", &retOne);
  ASSERT_TRUE(F);
  ASSERT_TRUE(S);

  std::mutex GateMu;
  std::condition_variable GateCV;
  bool GateOpen = false;
  std::atomic<bool> HandlerEntered{false};

  net::PoolOptions O;
  O.Workers = 2;
  O.PollTimeoutMs = 2;
  net::ReactorPool Pool(
      [&](const RequestHead &Head, std::string_view, std::string &Out,
          SharedBody &) {
        int64_t A = (*F)(0);
        if (Head.Target == "/block" && !HandlerEntered.exchange(true)) {
          std::unique_lock<std::mutex> L(GateMu);
          GateCV.wait(L, [&] { return GateOpen; });
        }
        int64_t B = (*S)(0);
        appendHttpResponse(Out, 200, "text/plain",
                           std::to_string(A) + "," + std::to_string(B),
                           Head.KeepAlive);
      },
      O);
  Pool.setUpdateRuntime(RT);
  ASSERT_FALSE(Pool.start());

  std::string BlockedBody;
  std::thread Blocked([&] {
    Expected<FetchResult> R = httpGet(Pool.port(), "/block");
    ASSERT_TRUE(R);
    BlockedBody = R->Body;
  });
  WAIT_FOR(HandlerEntered.load());

  // The rolling commit lands while the worker is stuck mid-request.
  Expected<Patch> P = makePairPatch(RT, 2);
  ASSERT_TRUE(P);
  RT.requestUpdate(std::move(*P));
  Pool.wake();
  WAIT_FOR(RT.updatesApplied() >= 1);
  EXPECT_EQ(RT.rollingCommits(), 1u);
  EXPECT_EQ(Pool.barrierRounds(), 0u);

  // Release the stuck worker: its in-flight request completes on ONE
  // generation — 1,1 (it read `first` before the swing while pinned at
  // its pre-swing epoch, so `second` must agree) — never 1,2.
  {
    std::lock_guard<std::mutex> L(GateMu);
    GateOpen = true;
  }
  GateCV.notify_all();
  Blocked.join();
  EXPECT_EQ(BlockedBody, "1,1");

  // And its *next* request runs the new generation.
  Expected<FetchResult> R = httpGet(Pool.port(), "/pair");
  ASSERT_TRUE(R);
  EXPECT_EQ(R->Body, "2,2");
  Pool.stop();
}

/// The update-latency SLO: under an idle pool, a staged patch commits
/// within one poll timeout of staging completing (the controller's
/// onStaged wake makes it usually far faster).
TEST(RollingLatencyTest, CommitLandsWithinOnePollTimeoutOfStaging) {
  Runtime RT;
  FlashedApp App(RT);
  DocStore Docs;
  Docs.put("/doc.html", "<html>doc</html>");
  ASSERT_FALSE(App.init(std::move(Docs)));
  App.enableAdmin(RT.controller());

  net::PoolOptions O;
  O.Workers = 2;
  O.PollTimeoutMs = 200; // a bound the wake path must beat
  net::ReactorPool Pool(
      [&App](const RequestHead &Head, std::string_view Raw,
             std::string &Out, SharedBody &Body) {
        App.handleInto(Head, Raw, Out, Body);
      },
      O);
  Pool.setUpdateRuntime(RT);
  App.attachPool(Pool);
  ASSERT_FALSE(Pool.start());

  Expected<Patch> P = makePatchP1(App);
  ASSERT_TRUE(P) << P.takeError().str();
  RT.controller().stagePatch(std::move(*P));
  WAIT_FOR(RT.updatesApplied() >= 1);

  UpdateRecord Rec = RT.updateLog().back();
  EXPECT_EQ(Rec.CommitMode, "rolling");
  EXPECT_LE(Rec.StageToCommitUs,
            static_cast<uint64_t>(O.PollTimeoutMs) * 1000)
      << "commit missed the one-poll-timeout SLO on an idle pool";
  EXPECT_GE(RT.stageToCommitLatency().Count.load(), 1u);
  Pool.stop();
}

/// PoolOptions::PinWorkers: affinity is applied on multi-core hosts and
/// skipped gracefully (cpu -1) on single-core ones — and serving works
/// either way.
TEST(PinWorkersTest, AffinityAppliedOrGracefullySkipped) {
  net::PoolOptions O;
  O.Workers = 2;
  O.PollTimeoutMs = 2;
  O.PinWorkers = true;
  net::ReactorPool Pool(
      [](const RequestHead &Head, std::string_view, std::string &Out,
         SharedBody &) {
        appendHttpResponse(Out, 200, "text/plain", "ok", Head.KeepAlive);
      },
      O);
  ASSERT_FALSE(Pool.start());
  Expected<FetchResult> R = httpGet(Pool.port(), "/x");
  ASSERT_TRUE(R);
  EXPECT_EQ(R->Status, 200);
  unsigned Cores = std::thread::hardware_concurrency();
  for (unsigned I = 0; I != Pool.workers(); ++I) {
    if (Cores > 1)
      EXPECT_GE(Pool.workerCpu(I), 0) << "worker " << I << " unpinned";
    else
      EXPECT_EQ(Pool.workerCpu(I), -1) << "1-core host must skip pinning";
  }
  Pool.stop();
}

/// DocStore hot replacement with mutex-free readers: worker threads
/// read a path continuously while the admin path replaces it.  The
/// TSan lane proves the absence of data races; here we assert every
/// observed body is a fully published value.
TEST(EpochDocStoreTest, LockFreeReadsUnderHotReplacement) {
  DocStore Docs;
  Docs.put("/x", "gen-0");
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Bad{0};
  std::vector<std::thread> Readers;
  for (unsigned T = 0; T != 3; ++T)
    Readers.emplace_back([&] {
      epoch::WorkerReg W;
      while (!Stop.load()) {
        W.quiesce();
        SharedBody B = Docs.getShared("/x");
        if (!B || B->compare(0, 4, "gen-") != 0)
          Bad.fetch_add(1);
      }
    });
  for (int I = 1; I != 500; ++I)
    Docs.put("/x", "gen-" + std::to_string(I));
  Stop.store(true);
  for (std::thread &T : Readers)
    T.join();
  EXPECT_EQ(Bad.load(), 0u);
  EXPECT_EQ(*Docs.getShared("/x"), "gen-499");
}

} // namespace
