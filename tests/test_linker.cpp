//===- tests/test_linker.cpp - Dynamic linker tests -----------*- C++ -*-===//
///
/// The load-bearing property throughout: a link unit that fails any
/// check is rejected at prepare time with ZERO mutation of the running
/// program.

#include "link/Linker.h"
#include "link/NativeLoader.h"
#include "runtime/Updateable.h"

#include <gtest/gtest.h>

using namespace dsu;

namespace {

int64_t inc(int64_t X) { return X + 1; }
int64_t dec(int64_t X) { return X - 1; }

class LinkerTest : public ::testing::Test {
protected:
  void SetUp() override {
    Handle = cantFail(defineUpdateable(Reg, Ctx, "app.inc", &inc));
    cantFail(Syms.addExport(
        {"host.now", Ctx.fnType({}, Ctx.intType()), nullptr,
         [](const std::vector<vtal::Value> &) -> Expected<vtal::Value> {
           return vtal::Value::makeInt(7);
         }}));
  }

  ProvideRequest provideInc(const Type *Ty = nullptr) {
    return ProvideRequest{
        "app.inc", Ty ? Ty : fnTypeOf<int64_t, int64_t>(Ctx),
        makeRawBinding(&dec, 0, "test-patch")};
  }

  TypeContext Ctx;
  UpdateableRegistry Reg;
  SymbolTable Syms;
  Updateable<int64_t(int64_t)> Handle;
};

TEST_F(LinkerTest, PrepareAndCommitReplacement) {
  Linker L(Reg, Syms);
  LinkUnit Unit;
  Unit.Name = "patch:test";
  Unit.Provides.push_back(provideInc());

  Expected<LinkPlan> Plan = L.prepare(std::move(Unit));
  ASSERT_TRUE(Plan) << Plan.takeError().str();
  EXPECT_TRUE(Plan->RequiredBumps.empty());
  ASSERT_EQ(Plan->IsReplacement.size(), 1u);
  EXPECT_TRUE(Plan->IsReplacement[0]);
  // Prepare must not have changed anything.
  EXPECT_EQ(Handle(10), 11);

  ASSERT_FALSE(L.commit(std::move(*Plan)));
  EXPECT_EQ(Handle(10), 9);
}

TEST_F(LinkerTest, NewDefinitionLinksAsDefine) {
  Linker L(Reg, Syms);
  LinkUnit Unit;
  Unit.Name = "patch:new";
  Unit.Provides.push_back(ProvideRequest{
      "app.dec", fnTypeOf<int64_t, int64_t>(Ctx), makeRawBinding(&dec)});
  Expected<LinkPlan> Plan = L.prepare(std::move(Unit));
  ASSERT_TRUE(Plan);
  EXPECT_FALSE(Plan->IsReplacement[0]);
  ASSERT_FALSE(L.commit(std::move(*Plan)));
  ASSERT_NE(Reg.lookup("app.dec"), nullptr);
}

TEST_F(LinkerTest, UnresolvedImportRejectsWholeUnit) {
  Linker L(Reg, Syms);
  LinkUnit Unit;
  Unit.Name = "patch:bad";
  Unit.Imports.push_back(
      ImportRequest{"host.ghost", Ctx.fnType({}, Ctx.intType())});
  Unit.Provides.push_back(provideInc());

  Expected<LinkPlan> Plan = L.prepare(std::move(Unit));
  ASSERT_FALSE(Plan);
  EXPECT_EQ(Plan.error().code(), ErrorCode::EC_Link);
  // Atomicity: nothing changed.
  EXPECT_EQ(Handle(10), 11);
  EXPECT_EQ(Handle.version(), 1u);
}

TEST_F(LinkerTest, ImportTypeMismatchRejects) {
  Linker L(Reg, Syms);
  LinkUnit Unit;
  Unit.Name = "patch:bad";
  Unit.Imports.push_back(
      ImportRequest{"host.now", Ctx.fnType({}, Ctx.stringType())});
  Expected<LinkPlan> Plan = L.prepare(std::move(Unit));
  ASSERT_FALSE(Plan);
  EXPECT_EQ(Plan.error().code(), ErrorCode::EC_TypeMismatch);
}

TEST_F(LinkerTest, ProvideTypeMismatchRejects) {
  Linker L(Reg, Syms);
  LinkUnit Unit;
  Unit.Name = "patch:bad";
  Unit.Provides.push_back(
      provideInc(Ctx.fnType({Ctx.stringType()}, Ctx.intType())));
  Expected<LinkPlan> Plan = L.prepare(std::move(Unit));
  ASSERT_FALSE(Plan);
  EXPECT_EQ(Plan.error().code(), ErrorCode::EC_TypeMismatch);
  EXPECT_EQ(Handle(10), 11);
}

TEST_F(LinkerTest, DuplicateProvideRejects) {
  Linker L(Reg, Syms);
  LinkUnit Unit;
  Unit.Name = "patch:bad";
  Unit.Provides.push_back(provideInc());
  Unit.Provides.push_back(provideInc());
  EXPECT_FALSE(L.prepare(std::move(Unit)));
}

TEST_F(LinkerTest, ProvideWithoutCodeRejects) {
  Linker L(Reg, Syms);
  LinkUnit Unit;
  Unit.Name = "patch:bad";
  Unit.Provides.push_back(
      ProvideRequest{"app.inc", fnTypeOf<int64_t, int64_t>(Ctx), Binding()});
  EXPECT_FALSE(L.prepare(std::move(Unit)));
}

TEST_F(LinkerTest, BumpObligationsSurface) {
  const Type *OldTy = Ctx.fnType({Ctx.namedType("rec", 1)}, Ctx.unitType());
  const Type *NewTy = Ctx.fnType({Ctx.namedType("rec", 2)}, Ctx.unitType());
  ASSERT_TRUE(Reg.define("app.use_rec", OldTy,
                         makeClosureBinding<void, int64_t>([](int64_t) {})));

  Linker L(Reg, Syms);
  LinkUnit Unit;
  Unit.Name = "patch:bump";
  Unit.Provides.push_back(ProvideRequest{
      "app.use_rec", NewTy,
      makeClosureBinding<void, int64_t>([](int64_t) {})});
  Expected<LinkPlan> Plan = L.prepare(std::move(Unit));
  ASSERT_TRUE(Plan) << Plan.takeError().str();
  ASSERT_EQ(Plan->RequiredBumps.size(), 1u);
  EXPECT_EQ(Plan->RequiredBumps[0].From.str(), "%rec@1");
  EXPECT_EQ(Plan->RequiredBumps[0].To.str(), "%rec@2");
}

// --- SymbolTable ---------------------------------------------------------

TEST(SymbolTableTest, AddLookupResolve) {
  TypeContext Ctx;
  SymbolTable Syms;
  const Type *Ty = Ctx.fnType({Ctx.intType()}, Ctx.intType());
  ASSERT_FALSE(Syms.addExport({"f", Ty, nullptr, nullptr}));
  EXPECT_EQ(Syms.size(), 1u);
  ASSERT_NE(Syms.lookup("f"), nullptr);
  EXPECT_EQ(Syms.lookup("g"), nullptr);

  Expected<const SymbolDef *> R = Syms.resolve("f", Ty);
  ASSERT_TRUE(R);
  Expected<const SymbolDef *> Wrong =
      Syms.resolve("f", Ctx.fnType({}, Ctx.intType()));
  ASSERT_FALSE(Wrong);
  EXPECT_EQ(Wrong.error().code(), ErrorCode::EC_TypeMismatch);
  EXPECT_FALSE(Syms.resolve("g", Ty));
}

TEST(SymbolTableTest, RejectsDuplicatesAndMalformed) {
  TypeContext Ctx;
  SymbolTable Syms;
  const Type *Ty = Ctx.fnType({}, Ctx.unitType());
  ASSERT_FALSE(Syms.addExport({"f", Ty, nullptr, nullptr}));
  EXPECT_TRUE(Syms.addExport({"f", Ty, nullptr, nullptr}));
  EXPECT_TRUE(Syms.addExport({"", Ty, nullptr, nullptr}));
  EXPECT_TRUE(Syms.addExport({"g", nullptr, nullptr, nullptr}));
}

// --- NativeLoader (error paths; the happy path lives in
// test_patchloader_native) -----------------------------------------------

TEST(NativeLoaderTest, MissingFileFails) {
  Expected<std::shared_ptr<LoadedLibrary>> L =
      LoadedLibrary::open("/nonexistent/patch.so");
  ASSERT_FALSE(L);
  EXPECT_EQ(L.error().code(), ErrorCode::EC_Link);
}

} // namespace
