//===- tests/test_vtal_interp.cpp - VTAL interpreter tests ----*- C++ -*-===//

#include "vtal/Assembler.h"
#include "vtal/Interp.h"
#include "vtal/Verifier.h"

#include <gtest/gtest.h>

using namespace dsu;
using namespace dsu::vtal;

namespace {

Module mustAssembleVerified(const char *Src) {
  Expected<Module> M = assemble(Src);
  EXPECT_TRUE(M) << M.error().str();
  Error E = verifyModule(*M);
  EXPECT_FALSE(E) << E.str();
  return std::move(*M);
}

TEST(InterpTest, Factorial) {
  Module M = mustAssembleVerified(R"(
module fact
func fact (n: int) -> int {
  locals (acc: int, i: int)
  push.i 1
  store acc
  push.i 1
  store i
loop:
  load i
  load n
  gt
  brif done
  load acc
  load i
  mul
  store acc
  load i
  push.i 1
  add
  store i
  br loop
done:
  load acc
  ret
}
)");
  Interpreter I(M);
  int64_t Want = 1;
  for (int64_t N = 0; N <= 12; ++N) {
    if (N > 0)
      Want *= N;
    Expected<Value> R = I.call("fact", {Value::makeInt(N)});
    ASSERT_TRUE(R) << R.error().str();
    EXPECT_EQ(R->asInt(), Want) << "fact(" << N << ")";
  }
  EXPECT_GT(I.lastFuelUsed(), 0u);
}

TEST(InterpTest, RecursiveFibonacci) {
  Module M = mustAssembleVerified(R"(
module fib
func fib (n: int) -> int {
  load n
  push.i 2
  lt
  brif base
  load n
  push.i 1
  sub
  call fib
  load n
  push.i 2
  sub
  call fib
  add
  ret
base:
  load n
  ret
}
)");
  Interpreter I(M);
  Expected<Value> R = I.call("fib", {Value::makeInt(15)});
  ASSERT_TRUE(R) << R.error().str();
  EXPECT_EQ(R->asInt(), 610);
}

TEST(InterpTest, FloatsAndConversions) {
  Module M = mustAssembleVerified(R"(
module flt
func mix (a: float, b: int) -> float {
  load a
  load b
  i2f
  fmul
  push.f 0.5
  fadd
  ret
}
)");
  Interpreter I(M);
  Expected<Value> R =
      I.call("mix", {Value::makeFloat(2.5), Value::makeInt(4)});
  ASSERT_TRUE(R);
  EXPECT_DOUBLE_EQ(R->asFloat(), 10.5);
}

TEST(InterpTest, StringOps) {
  Module M = mustAssembleVerified(R"(
module str
func greet (name: string) -> string {
  push.s "hello, "
  load name
  scat
  push.s "!"
  scat
  ret
}
func isempty (s: string) -> bool {
  load s
  slen
  push.i 0
  eq
  ret
}
)");
  Interpreter I(M);
  Expected<Value> R = I.call("greet", {Value::makeStr("world")});
  ASSERT_TRUE(R);
  EXPECT_EQ(R->asStr(), "hello, world!");
  Expected<Value> B = I.call("isempty", {Value::makeStr("")});
  ASSERT_TRUE(B);
  EXPECT_TRUE(B->asBool());
}

TEST(InterpTest, HostImports) {
  Module M = mustAssembleVerified(R"(
module imp
import fetch : (string) -> string
import now : () -> int
func run (key: string) -> string {
  load key
  call fetch
  ret
}
func stamp () -> int {
  call now
  push.i 1
  add
  ret
}
)");
  Interpreter I(M);
  ASSERT_FALSE(I.bindImport("fetch", [](const std::vector<Value> &Args)
                                -> Expected<Value> {
    return Value::makeStr("value-of-" + Args[0].asStr());
  }));
  ASSERT_FALSE(
      I.bindImport("now", [](const std::vector<Value> &) -> Expected<Value> {
        return Value::makeInt(41);
      }));

  Expected<Value> R = I.call("run", {Value::makeStr("k1")});
  ASSERT_TRUE(R);
  EXPECT_EQ(R->asStr(), "value-of-k1");
  Expected<Value> S = I.call("stamp", {});
  ASSERT_TRUE(S);
  EXPECT_EQ(S->asInt(), 42);
}

TEST(InterpTest, UnboundImportTraps) {
  Module M = mustAssembleVerified(R"(
module imp
import now : () -> int
func f () -> int {
  call now
  ret
}
)");
  Interpreter I(M);
  Expected<Value> R = I.call("f", {});
  ASSERT_FALSE(R);
  EXPECT_EQ(R.error().code(), ErrorCode::EC_Link);
}

TEST(InterpTest, BindUnknownImportFails) {
  Module M = mustAssembleVerified(
      "module m\nfunc f () -> unit {\nret\n}");
  Interpreter I(M);
  EXPECT_TRUE(I.bindImport("ghost", [](const std::vector<Value> &)
                               -> Expected<Value> {
    return Value::makeUnit();
  }));
}

TEST(InterpTest, HostResultKindChecked) {
  Module M = mustAssembleVerified(R"(
module imp
import now : () -> int
func f () -> int {
  call now
  ret
}
)");
  Interpreter I(M);
  ASSERT_FALSE(
      I.bindImport("now", [](const std::vector<Value> &) -> Expected<Value> {
        return Value::makeStr("not an int");
      }));
  Expected<Value> R = I.call("f", {});
  ASSERT_FALSE(R);
  EXPECT_EQ(R.error().code(), ErrorCode::EC_Link);
}

TEST(InterpTest, DivisionByZeroTraps) {
  Module M = mustAssembleVerified(R"(
module div
func f (a: int, b: int) -> int {
  load a
  load b
  div
  ret
}
)");
  Interpreter I(M);
  Expected<Value> Ok = I.call("f", {Value::makeInt(7), Value::makeInt(2)});
  ASSERT_TRUE(Ok);
  EXPECT_EQ(Ok->asInt(), 3);
  Expected<Value> Bad = I.call("f", {Value::makeInt(7), Value::makeInt(0)});
  ASSERT_FALSE(Bad);
  EXPECT_NE(Bad.error().message().find("division by zero"),
            std::string::npos);
}

TEST(InterpTest, FuelExhaustionTraps) {
  Module M = mustAssembleVerified(R"(
module spin
func f () -> unit {
loop:
  br loop
}
)");
  Interpreter I(M, /*Fuel=*/10000);
  Expected<Value> R = I.call("f", {});
  ASSERT_FALSE(R);
  EXPECT_NE(R.error().message().find("fuel"), std::string::npos);
}

TEST(InterpTest, CallDepthLimited) {
  Module M = mustAssembleVerified(R"(
module deep
func f (n: int) -> int {
  load n
  call f
  ret
}
)");
  Interpreter I(M);
  Expected<Value> R = I.call("f", {Value::makeInt(1)});
  ASSERT_FALSE(R);
  EXPECT_NE(R.error().message().find("depth"), std::string::npos);
}

TEST(InterpTest, ArgumentValidation) {
  Module M = mustAssembleVerified(R"(
module args
func f (a: int, b: string) -> int {
  load b
  slen
  load a
  add
  ret
}
)");
  Interpreter I(M);
  EXPECT_FALSE(I.call("ghost", {}));
  EXPECT_FALSE(I.call("f", {Value::makeInt(1)}));
  EXPECT_FALSE(I.call("f", {Value::makeStr("x"), Value::makeInt(1)}));
  Expected<Value> Ok =
      I.call("f", {Value::makeInt(1), Value::makeStr("abc")});
  ASSERT_TRUE(Ok);
  EXPECT_EQ(Ok->asInt(), 4);
}

TEST(InterpTest, LocalsZeroInitialized) {
  Module M = mustAssembleVerified(R"(
module zeros
func f () -> string {
  locals (s: string, i: int)
  load s
  load i
  push.i 0
  eq
  brif ok
  push.s "bad"
  scat
  ret
ok:
  push.s "ok"
  scat
  ret
}
)");
  Interpreter I(M);
  Expected<Value> R = I.call("f", {});
  ASSERT_TRUE(R);
  EXPECT_EQ(R->asStr(), "ok");
}

TEST(InterpTest, GcdLoop) {
  Module M = mustAssembleVerified(R"(
module gcd
func gcd (a: int, b: int) -> int {
loop:
  load b
  push.i 0
  eq
  brif done
  load a
  load b
  rem
  load b
  store a
  store b
  br loop
done:
  load a
  ret
}
)");
  Interpreter I(M);
  // Note the store order above: rem result and old b swap into (b, a).
  Expected<Value> R =
      I.call("gcd", {Value::makeInt(252), Value::makeInt(105)});
  ASSERT_TRUE(R) << R.error().str();
  EXPECT_EQ(R->asInt(), 21);
}

TEST(ValueTest, DebugStrings) {
  EXPECT_EQ(Value::makeInt(42).str(), "int(42)");
  EXPECT_EQ(Value::makeBool(true).str(), "bool(true)");
  EXPECT_EQ(Value::makeUnit().str(), "unit");
  EXPECT_EQ(Value::makeStr("a\"b").str(), "string(\"a\\\"b\")");
  EXPECT_EQ(Value::makeFloat(1.5).str(), "float(1.5)");
}

} // namespace

namespace {

TEST(InterpTest, SubstringAndFind) {
  Module M = mustAssembleVerified(R"(
module strops
func strip_query (target: string) -> string {
  locals (q: int)
  load target
  push.s "?"
  sfind
  store q
  load q
  push.i 0
  lt
  brif noquery
  load target
  push.i 0
  load q
  ssub
  ret
noquery:
  load target
  ret
}
func method_of (line: string) -> string {
  locals (sp: int)
  load line
  push.s " "
  sfind
  store sp
  load line
  push.i 0
  load sp
  ssub
  ret
}
)");
  Interpreter I(M);
  EXPECT_EQ(I.call("strip_query", {Value::makeStr("/doc.html?x=1")})
                ->asStr(),
            "/doc.html");
  EXPECT_EQ(I.call("strip_query", {Value::makeStr("/plain.html")})->asStr(),
            "/plain.html");
  EXPECT_EQ(I.call("method_of", {Value::makeStr("GET /x HTTP/1.0")})
                ->asStr(),
            "GET");
}

TEST(InterpTest, SubstringClamps) {
  Module M = mustAssembleVerified(R"(
module clamp
func slice (s: string, a: int, n: int) -> string {
  load s
  load a
  load n
  ssub
  ret
}
)");
  Interpreter I(M);
  auto Slice = [&](const char *S, int64_t A, int64_t N) {
    return I.call("slice", {Value::makeStr(S), Value::makeInt(A),
                            Value::makeInt(N)})
        ->asStr();
  };
  EXPECT_EQ(Slice("hello", 1, 3), "ell");
  EXPECT_EQ(Slice("hello", 0, 99), "hello");  // length clamped
  EXPECT_EQ(Slice("hello", 99, 3), "");       // start clamped
  EXPECT_EQ(Slice("hello", -5, 2), "he");     // negative start clamped
  EXPECT_EQ(Slice("hello", 2, -1), "");       // negative length clamped
}

TEST(InterpTest, SFindMiss) {
  Module M = mustAssembleVerified(R"(
module findmiss
func f (s: string) -> int {
  load s
  push.s "zzz"
  sfind
  ret
}
)");
  Interpreter I(M);
  EXPECT_EQ(I.call("f", {Value::makeStr("hay")})->asInt(), -1);
}

} // namespace
