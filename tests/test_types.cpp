//===- tests/test_types.cpp - Type system tests ---------------*- C++ -*-===//

#include "types/Type.h"
#include "types/TypeParser.h"

#include <gtest/gtest.h>

using namespace dsu;

namespace {

class TypesTest : public ::testing::Test {
protected:
  TypeContext Ctx;
};

TEST_F(TypesTest, PrimitivesAreInterned) {
  EXPECT_EQ(Ctx.intType(), Ctx.intType());
  EXPECT_EQ(Ctx.intType()->str(), "int");
  EXPECT_EQ(Ctx.unitType()->str(), "unit");
  EXPECT_NE(Ctx.intType(), Ctx.floatType());
}

TEST_F(TypesTest, ConstructorsIntern) {
  const Type *A = Ctx.ptrType(Ctx.intType());
  const Type *B = Ctx.ptrType(Ctx.intType());
  EXPECT_EQ(A, B);
  EXPECT_EQ(A->str(), "ptr<int>");
  EXPECT_NE(A, Ctx.arrayType(Ctx.intType()));
}

TEST_F(TypesTest, StructCanonicalForm) {
  const Type *S = Ctx.structType(
      {{"x", Ctx.intType()}, {"y", Ctx.floatType()}});
  EXPECT_EQ(S->str(), "{x: int, y: float}");
  ASSERT_EQ(S->fields().size(), 2u);
  EXPECT_NE(S->findField("x"), nullptr);
  EXPECT_EQ(S->findField("z"), nullptr);
  // Field order matters.
  const Type *S2 = Ctx.structType(
      {{"y", Ctx.floatType()}, {"x", Ctx.intType()}});
  EXPECT_NE(S, S2);
}

TEST_F(TypesTest, FnCanonicalForm) {
  const Type *F =
      Ctx.fnType({Ctx.stringType(), Ctx.intType()}, Ctx.boolType());
  EXPECT_EQ(F->str(), "fn(string, int) -> bool");
  EXPECT_TRUE(F->isFunction());
  EXPECT_EQ(F->params().size(), 2u);
  EXPECT_EQ(F->result(), Ctx.boolType());
  EXPECT_EQ(Ctx.fnType({}, Ctx.unitType())->str(), "fn() -> unit");
}

TEST_F(TypesTest, NamedTypesAreNominal) {
  const Type *A = Ctx.namedType("cache", 1);
  const Type *B = Ctx.namedType("cache", 2);
  EXPECT_NE(A, B);
  EXPECT_EQ(A->str(), "%cache@1");
  EXPECT_EQ(A->name().Name, "cache");
  EXPECT_EQ(A->name().Version, 1u);
  EXPECT_EQ(A, Ctx.namedType("cache", 1));
}

TEST_F(TypesTest, FingerprintsDistinguishTypes) {
  EXPECT_NE(Ctx.intType()->fingerprint(), Ctx.floatType()->fingerprint());
  EXPECT_NE(Ctx.namedType("a", 1)->fingerprint(),
            Ctx.namedType("a", 2)->fingerprint());
  EXPECT_EQ(Ctx.namedType("a", 1)->fingerprint(),
            Ctx.namedType("a", 1)->fingerprint());
}

TEST_F(TypesTest, DefineNamedOnceOnly) {
  VersionedName N{"rec", 1};
  const Type *Repr = Ctx.structType({{"v", Ctx.intType()}});
  EXPECT_FALSE(Ctx.defineNamed(N, Repr));
  // Idempotent with the same representation.
  EXPECT_FALSE(Ctx.defineNamed(N, Repr));
  // Conflicting representation is refused.
  Error E = Ctx.defineNamed(N, Ctx.intType());
  EXPECT_TRUE(E);
  EXPECT_EQ(E.code(), ErrorCode::EC_Invalid);
  EXPECT_EQ(Ctx.lookupDefinition(N), Repr);
}

TEST_F(TypesTest, LatestVersionTracksDefinitions) {
  EXPECT_EQ(Ctx.latestVersion("rec"), 0u);
  ASSERT_FALSE(Ctx.defineNamed({"rec", 1}, Ctx.intType()));
  ASSERT_FALSE(Ctx.defineNamed({"rec", 3}, Ctx.floatType()));
  EXPECT_EQ(Ctx.latestVersion("rec"), 3u);
  EXPECT_EQ(Ctx.latestVersion("other"), 0u);
}

TEST_F(TypesTest, VersionedNameStr) {
  EXPECT_EQ((VersionedName{"cache", 7}).str(), "%cache@7");
}

// --- Parser round-trips (property-style sweep) ---------------------------

class TypeParseRoundTrip : public ::testing::TestWithParam<const char *> {};

TEST_P(TypeParseRoundTrip, CanonicalFormReparses) {
  TypeContext Ctx;
  Expected<const Type *> T = parseType(Ctx, GetParam());
  ASSERT_TRUE(T) << T.error().str();
  // The canonical printed form parses back to the identical node.
  Expected<const Type *> Back = parseType(Ctx, (*T)->str());
  ASSERT_TRUE(Back) << Back.error().str();
  EXPECT_EQ(*T, *Back);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TypeParseRoundTrip,
    ::testing::Values(
        "int", "bool", "float", "string", "unit", "ptr<int>",
        "array<string>", "ptr<ptr<array<int>>>", "{}",
        "{x: int}", "{x: int, y: float, z: {a: bool}}",
        "fn() -> unit", "fn(int) -> int",
        "fn(string, int, bool) -> string",
        "fn(fn(int) -> int) -> fn(int) -> bool", "%cache@1",
        "%cache_entry@12", "array<%rec@2>",
        "fn(%conn@1, string) -> %conn@2",
        "{head: ptr<%node@1>, len: int}",
        "  fn( int , int )  ->  int  "));

class TypeParseErrors : public ::testing::TestWithParam<const char *> {};

TEST_P(TypeParseErrors, Rejected) {
  TypeContext Ctx;
  Expected<const Type *> T = parseType(Ctx, GetParam());
  EXPECT_FALSE(T) << "accepted: " << GetParam();
  if (!T)
    EXPECT_EQ(T.error().code(), ErrorCode::EC_Parse);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TypeParseErrors,
    ::testing::Values("", "in", "integer", "ptr<", "ptr<int", "ptr<>",
                      "array<unit2>", "{x}", "{x:}", "{x: int",
                      "{x: int,}", "fn(", "fn() ->", "fn(int,) -> int",
                      "fn(int) int", "%", "%@1", "%name@", "%name@0",
                      "%name@abc", "int extra", "unknown<int>"));

TEST(ParseVersionedNameTest, Accepts) {
  Expected<VersionedName> N = parseVersionedName(" %cache@3 ");
  ASSERT_TRUE(N);
  EXPECT_EQ(N->Name, "cache");
  EXPECT_EQ(N->Version, 3u);
}

TEST(ParseVersionedNameTest, Rejects) {
  EXPECT_FALSE(parseVersionedName("cache@3"));
  EXPECT_FALSE(parseVersionedName("%cache"));
  EXPECT_FALSE(parseVersionedName("%cache@0"));
  EXPECT_FALSE(parseVersionedName("%@3"));
}

} // namespace
