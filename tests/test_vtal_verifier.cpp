//===- tests/test_vtal_verifier.cpp - VTAL verifier tests -----*- C++ -*-===//
///
/// The verifier is the trust boundary: these tests check it accepts
/// well-typed patch code and rejects every class of ill-typed code —
/// including adversarially mutated bytecode — without crashing.

#include "vtal/Assembler.h"
#include "vtal/Bytecode.h"
#include "vtal/Verifier.h"

#include <gtest/gtest.h>

using namespace dsu;
using namespace dsu::vtal;

namespace {

Module mustAssemble(const char *Src) {
  Expected<Module> M = assemble(Src);
  EXPECT_TRUE(M) << M.error().str();
  return std::move(*M);
}

TEST(VerifierTest, AcceptsFactorial) {
  Module M = mustAssemble(R"(
module fact
func fact (n: int) -> int {
  locals (acc: int, i: int)
  push.i 1
  store acc
  push.i 1
  store i
loop:
  load i
  load n
  gt
  brif done
  load acc
  load i
  mul
  store acc
  load i
  push.i 1
  add
  store i
  br loop
done:
  load acc
  ret
}
)");
  VerifyStats Stats;
  EXPECT_FALSE(verifyModule(M, &Stats));
  EXPECT_EQ(Stats.FunctionsChecked, 1u);
  EXPECT_GE(Stats.InstructionsChecked, M.totalInstructions());
}

TEST(VerifierTest, AcceptsAllOperandKinds) {
  Module M = mustAssemble(R"(
module kinds
func f (a: int, b: float, c: bool, d: string) -> string {
  load a
  i2f
  load b
  fadd
  f2i
  push.i 3
  rem
  push.i 0
  eq
  load c
  and
  not
  brif tail
  load d
  dup
  scat
  ret
tail:
  load d
  slen
  neg
  pop
  push.s "x"
  load d
  seq
  pop
  load d
  ret
}
)");
  Error E = verifyModule(M);
  EXPECT_FALSE(E) << E.str();
}

TEST(VerifierTest, AcceptsCallsToFunctionsAndImports) {
  Module M = mustAssemble(R"(
module calls
import now : () -> int
func twice (x: int) -> int {
  load x
  push.i 2
  mul
  ret
}
func main () -> int {
  call now
  call twice
  ret
}
)");
  Error E = verifyModule(M);
  EXPECT_FALSE(E) << E.str();
}

struct RejectCase {
  const char *Name;
  const char *Source;
  const char *WhySubstring;
};

class VerifierRejects : public ::testing::TestWithParam<RejectCase> {};

TEST_P(VerifierRejects, Rejected) {
  Module M = mustAssemble(GetParam().Source);
  Error E = verifyModule(M);
  ASSERT_TRUE(E) << "verified: " << GetParam().Name;
  EXPECT_EQ(E.code(), ErrorCode::EC_Verify);
  EXPECT_NE(E.message().find(GetParam().WhySubstring), std::string::npos)
      << "actual: " << E.message();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VerifierRejects,
    ::testing::Values(
        RejectCase{"stack_underflow",
                   "module m\nfunc f () -> int {\nadd\nret\n}",
                   "underflow"},
        RejectCase{"kind_mismatch",
                   "module m\nfunc f () -> int {\npush.s \"x\"\npush.i 1\n"
                   "add\nret\n}",
                   "expected int"},
        RejectCase{"wrong_return_kind",
                   "module m\nfunc f () -> int {\npush.b true\nret\n}",
                   "return"},
        RejectCase{"excess_stack_at_ret",
                   "module m\nfunc f () -> int {\npush.i 1\npush.i 2\n"
                   "ret\n}",
                   "return"},
        RejectCase{"nonempty_unit_ret",
                   "module m\nfunc f () -> unit {\npush.i 1\nret\n}",
                   "non-empty stack"},
        RejectCase{"fall_off_end",
                   "module m\nfunc f () -> int {\npush.i 1\npop\n}",
                   "past end"},
        RejectCase{"inconsistent_join",
                   "module m\nfunc f (c: bool) -> int {\nload c\n"
                   "brif other\npush.i 1\npush.i 2\nbr join\nother:\n"
                   "push.i 1\njoin:\nret\n}",
                   "join"},
        RejectCase{"store_kind_mismatch",
                   "module m\nfunc f () -> unit {\nlocals (x: int)\n"
                   "push.s \"s\"\nstore x\nret\n}",
                   "expected int"},
        RejectCase{"call_unknown",
                   "module m\nfunc f () -> int {\ncall ghost\nret\n}",
                   "unknown function"},
        RejectCase{"call_bad_args",
                   "module m\nfunc g (x: int) -> int {\nload x\nret\n}\n"
                   "func f () -> int {\npush.s \"s\"\ncall g\nret\n}",
                   "expected int"},
        RejectCase{"brif_non_bool",
                   "module m\nfunc f () -> unit {\npush.i 1\nbrif x\nx:\n"
                   "ret\n}",
                   "expected bool"},
        RejectCase{"empty_function", "module m\nfunc f () -> unit {\n}",
                   "no code"}),
    [](const ::testing::TestParamInfo<RejectCase> &Info) {
      return Info.param.Name;
    });

TEST(VerifierTest, DuplicateFunctionNameViaDecode) {
  // The assembler refuses duplicates, so build the module directly.
  Module M;
  M.Name = "dup";
  Function F;
  F.Name = "f";
  F.Sig.Result = ValKind::VK_Unit;
  F.Code.push_back(Instruction{Opcode::Ret, 0, 0, "", 0});
  M.Functions.push_back(F);
  M.Functions.push_back(F);
  Error E = verifyModule(M);
  ASSERT_TRUE(E);
  EXPECT_NE(E.message().find("duplicate"), std::string::npos);
}

TEST(VerifierTest, ImportFunctionCollision) {
  Module M;
  M.Name = "coll";
  Import I;
  I.Name = "f";
  I.Sig.Result = ValKind::VK_Unit;
  M.Imports.push_back(I);
  Function F;
  F.Name = "f";
  F.Sig.Result = ValKind::VK_Unit;
  F.Code.push_back(Instruction{Opcode::Ret, 0, 0, "", 0});
  M.Functions.push_back(F);
  Error E = verifyModule(M);
  ASSERT_TRUE(E);
  EXPECT_NE(E.message().find("collides"), std::string::npos);
}

/// Adversarial mutation sweep: flip each instruction's opcode to every
/// other opcode and demand the verifier terminates with a clean verdict
/// (accept or reject), never crashing.  This is the load-bearing safety
/// property for accepting patch code from outside the trust boundary.
TEST(VerifierProperty, OpcodeMutationNeverCrashes) {
  Module M = mustAssemble(R"(
module victim
func f (n: int) -> int {
  locals (acc: int)
  push.i 1
  store acc
  load n
  push.i 0
  gt
  brif body
  load acc
  ret
body:
  load acc
  load n
  mul
  store acc
  load acc
  ret
}
)");
  ASSERT_FALSE(verifyModule(M));

  size_t Accepted = 0, Rejected = 0;
  Function &F = M.Functions[0];
  for (size_t PC = 0; PC != F.Code.size(); ++PC) {
    Instruction Saved = F.Code[PC];
    for (unsigned Op = 0; Op != NumOpcodes; ++Op) {
      F.Code[PC].Op = static_cast<Opcode>(Op);
      // Keep operand fields; out-of-range indices must also be caught.
      if (verifyModule(M))
        ++Rejected;
      else
        ++Accepted;
    }
    F.Code[PC] = Saved;
  }
  // The original (and a few benign mutations) pass; most mutations fail.
  EXPECT_GT(Accepted, 0u);
  EXPECT_GT(Rejected, Accepted);
}

/// Byte-corruption sweep over the encoded form: decode either fails
/// cleanly or yields a module the verifier judges without crashing.
TEST(VerifierProperty, BytecodeCorruptionIsSafe) {
  Module M = mustAssemble(R"(
module victim
func f (x: int) -> int {
  load x
  push.i 41
  add
  ret
}
)");
  std::string Bytes = encodeModule(M);
  unsigned DecodeFailures = 0, VerifyRuns = 0;
  for (size_t I = 0; I != Bytes.size(); ++I) {
    for (unsigned char Delta : {0x01, 0x80, 0xFF}) {
      std::string Mutated = Bytes;
      Mutated[I] = static_cast<char>(Mutated[I] ^ Delta);
      Expected<Module> Decoded = decodeModule(Mutated);
      if (!Decoded) {
        ++DecodeFailures;
        continue;
      }
      ++VerifyRuns;
      (void)verifyModule(*Decoded); // must not crash; verdict is free
    }
  }
  EXPECT_GT(DecodeFailures, 0u);
  EXPECT_GT(VerifyRuns, 0u);
}

} // namespace

namespace {

TEST(VerifierTest, StringOpsTyped) {
  // ssub needs (str, int, int); sfind needs (str, str).
  Module Bad1 = mustAssemble(
      "module m\nfunc f (s: string) -> string {\nload s\npush.s \"a\"\n"
      "push.i 1\nssub\nret\n}");
  EXPECT_TRUE(verifyModule(Bad1));
  Module Bad2 = mustAssemble(
      "module m\nfunc f (s: string) -> int {\nload s\npush.i 1\nsfind\n"
      "ret\n}");
  EXPECT_TRUE(verifyModule(Bad2));
  Module Good = mustAssemble(
      "module m\nfunc f (s: string) -> string {\nload s\npush.i 0\n"
      "push.i 2\nssub\nret\n}");
  Error E = verifyModule(Good);
  EXPECT_FALSE(E) << E.str();
}

} // namespace
