//===- tests/test_trace.cpp - Flight recorder + VTAL profiler -*- C++ -*-===//
///
/// The update-pipeline flight recorder (trace/Trace.h): the per-thread
/// seqlocked ring, span/instant/interval recording, drop-oldest
/// accounting, the span-tree builder's time-containment nesting, the
/// Chrome trace-event export, and the per-phase latency histograms.
/// Plus the VTAL hot-function profiler (trace/Profile.h): self-fuel
/// attribution across calls, trap counting, and the ranking that
/// surfaces an injected hot function.

#include "trace/Profile.h"
#include "trace/Trace.h"
#include "vtal/Assembler.h"
#include "vtal/Interp.h"
#include "vtal/Verifier.h"

#include <gtest/gtest.h>

#include <thread>

using namespace dsu;
using namespace dsu::trace;

namespace {

/// Events recorded by this test binary's threads, for one update id.
std::vector<EventCopy> eventsFor(uint64_t UpdateId) {
  std::vector<EventCopy> Out;
  for (const EventCopy &E : Recorder::instance().snapshot())
    if (E.UpdateId == UpdateId)
      Out.push_back(E);
  return Out;
}

size_t countOccurrences(const std::string &Hay, const std::string &Needle) {
  size_t Count = 0;
  for (size_t Pos = Hay.find(Needle); Pos != std::string::npos;
       Pos = Hay.find(Needle, Pos + Needle.size()))
    ++Count;
  return Count;
}

TEST(TraceRecorderTest, RecordsCompleteInstantAndIntervalEvents) {
  Recorder &R = Recorder::instance();
  R.clear();
  const uint64_t Id = 9001;
  {
    ScopedUpdateId Tag(Id);
    R.complete("cat", "work", 100, 50, 7);
    R.instant("cat", "mark", 3);
  }
  R.begin("ctl", "hop", Id);
  R.end("ctl", "hop", Id);

  std::vector<EventCopy> Mine = eventsFor(Id);
  ASSERT_EQ(Mine.size(), 4u);
  // snapshot() sorts by Serial: publication order.
  EXPECT_STREQ(Mine[0].Name, "work");
  EXPECT_EQ(Mine[0].Kind, EventKind::Complete);
  EXPECT_EQ(Mine[0].StartUs, 100u);
  EXPECT_EQ(Mine[0].DurUs, 50u);
  EXPECT_EQ(Mine[0].Arg, 7u);
  EXPECT_STREQ(Mine[1].Name, "mark");
  EXPECT_EQ(Mine[1].Kind, EventKind::Instant);
  EXPECT_EQ(Mine[2].Kind, EventKind::Begin);
  EXPECT_EQ(Mine[3].Kind, EventKind::End);
  EXPECT_LT(Mine[0].Serial, Mine[1].Serial);
  EXPECT_LT(Mine[1].Serial, Mine[2].Serial);
  // All four came from this thread.
  EXPECT_EQ(Mine[0].Tid, Mine[3].Tid);
}

TEST(TraceRecorderTest, ScopedUpdateIdNestsAndRestores) {
  EXPECT_EQ(currentUpdateId(), 0u);
  {
    ScopedUpdateId Outer(11);
    EXPECT_EQ(currentUpdateId(), 11u);
    {
      ScopedUpdateId Inner(22);
      EXPECT_EQ(currentUpdateId(), 22u);
    }
    EXPECT_EQ(currentUpdateId(), 11u);
  }
  EXPECT_EQ(currentUpdateId(), 0u);
}

TEST(TraceRecorderTest, DropsOldestWhenTheRingWraps) {
  Recorder &R = Recorder::instance();
  R.clear();
  const uint64_t Id = 9002;
  const size_t Extra = 100;
  uint64_t DroppedBefore = R.dropped();
  {
    ScopedUpdateId Tag(Id);
    for (size_t I = 0; I != Recorder::SlotsPerThread + Extra; ++I)
      R.complete("wrap", "evt", I, 1, I);
  }
  std::vector<EventCopy> Mine = eventsFor(Id);
  // The ring holds at most SlotsPerThread events; the survivors are the
  // most recent ones.
  EXPECT_EQ(Mine.size(), Recorder::SlotsPerThread);
  uint64_t MinArg = UINT64_MAX;
  for (const EventCopy &E : Mine)
    MinArg = std::min(MinArg, E.Arg);
  EXPECT_GE(MinArg, Extra);
  EXPECT_GE(R.dropped(), DroppedBefore + Extra);
}

TEST(TraceRecorderTest, SnapshotSeesOtherThreadsRings) {
  Recorder &R = Recorder::instance();
  R.clear();
  const uint64_t Id = 9003;
  uint32_t MainTid = 0;
  {
    ScopedUpdateId Tag(Id);
    R.instant("t", "main");
  }
  std::thread([&] {
    ScopedUpdateId Tag(Id);
    R.instant("t", "worker");
  }).join();
  std::vector<EventCopy> Mine = eventsFor(Id);
  ASSERT_EQ(Mine.size(), 2u);
  for (const EventCopy &E : Mine)
    if (std::string(E.Name) == "main")
      MainTid = E.Tid;
  for (const EventCopy &E : Mine)
    if (std::string(E.Name) == "worker") {
      EXPECT_NE(E.Tid, MainTid);
    }
}

TEST(TraceRecorderTest, InternReturnsStablePointers) {
  const char *A = intern("verify.mod.fn1");
  const char *B = intern(std::string("verify.mod.") + "fn1");
  const char *C = intern("verify.mod.fn2");
  EXPECT_EQ(A, B); // same content, same pooled pointer
  EXPECT_NE(A, C);
  EXPECT_STREQ(C, "verify.mod.fn2");
}

TEST(TraceSpanTreeTest, NestsByTimeContainmentPerThread) {
  Recorder &R = Recorder::instance();
  R.clear();
  const uint64_t Id = 9004;
  {
    ScopedUpdateId Tag(Id);
    R.complete("stage", "pipeline", 100, 900);  // [100, 1000)
    R.complete("stage", "verify", 150, 100, 42); // [150, 250) -> child
    R.complete("stage", "link", 300, 100);       // [300, 400) -> child
    R.instant("update", "ready"); // real-time ts: a root, not nested
  }
  {
    ScopedUpdateId Tag(777); // different update: must not appear
    R.complete("stage", "other", 100, 10);
  }
  std::string J = spanTreeJson(Id);
  EXPECT_NE(J.find("\"update\":9004"), std::string::npos);
  EXPECT_NE(J.find("\"events\":4"), std::string::npos);
  EXPECT_EQ(J.find("\"other\""), std::string::npos);
  // The pipeline span is the single root and carries children.
  size_t Pipeline = J.find("\"name\":\"pipeline\"");
  ASSERT_NE(Pipeline, std::string::npos);
  size_t Children = J.find("\"children\":[", Pipeline);
  ASSERT_NE(Children, std::string::npos);
  EXPECT_LT(Children, J.find("\"name\":\"verify\""));
  EXPECT_LT(Children, J.find("\"name\":\"link\""));
  EXPECT_NE(J.find("\"arg\":42"), std::string::npos);
  // verify and link are siblings: link is not inside verify's subtree.
  EXPECT_LT(J.find("\"name\":\"verify\""), J.find("\"name\":\"link\""));
  EXPECT_EQ(countOccurrences(J, "\"children\":["), 1u);
}

TEST(TraceSpanTreeTest, PairsCrossThreadBeginEndByUpdateId) {
  Recorder &R = Recorder::instance();
  R.clear();
  const uint64_t Id = 9005;
  R.begin("ctl", "backlog", Id);
  std::thread([&] { R.end("ctl", "backlog", Id); }).join();
  std::string J = spanTreeJson(Id);
  // The pair is synthesized into one interval span with a finite
  // duration (not left dangling to "now").
  size_t At = J.find("\"name\":\"backlog\"");
  ASSERT_NE(At, std::string::npos);
  EXPECT_NE(J.find("\"kind\":\"interval\""), std::string::npos);
  EXPECT_EQ(countOccurrences(J, "\"name\":\"backlog\""), 1u);
}

TEST(TraceChromeExportTest, EmitsTraceEventJson) {
  Recorder &R = Recorder::instance();
  R.clear();
  const uint64_t Id = 9006;
  {
    ScopedUpdateId Tag(Id);
    R.complete("stage", "pipeline", 10, 20, 1);
    R.instant("update", "ready");
  }
  R.begin("ctl", "backlog", Id);
  R.end("ctl", "backlog", Id);

  std::string J = chromeTraceJson(Id);
  EXPECT_EQ(J.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(J.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(J.find("\"dur\":20"), std::string::npos);
  EXPECT_NE(J.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(J.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(J.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(J.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(J.find("\"id\":9006"), std::string::npos);
  EXPECT_NE(J.find("\"args\":{\"update\":9006"), std::string::npos);

  // Unfiltered export includes everything; the filter excludes other
  // updates' events.
  {
    ScopedUpdateId Tag(12345);
    R.instant("x", "noise");
  }
  EXPECT_EQ(chromeTraceJson(Id).find("noise"), std::string::npos);
  EXPECT_NE(chromeTraceJson().find("noise"), std::string::npos);
}

TEST(TracePhaseTest, PhaseNamesAndHistogramsWork) {
  EXPECT_STREQ(phaseName(Phase::Analysis), "analysis");
  EXPECT_STREQ(phaseName(Phase::QueueWait), "queue_wait");
  EXPECT_STREQ(phaseName(Phase::BarrierPark), "barrier_park");
  EXPECT_STREQ(phaseName(Phase::JournalSeal), "journal_seal");
  LatencyHistogram &H = phaseHistogram(Phase::Analysis);
  uint64_t Before = H.Count.load();
  notePhase(Phase::Analysis, 123);
  EXPECT_EQ(H.Count.load(), Before + 1);
  EXPECT_GE(H.TotalUs.load(), 123u);
}

// --- VTAL hot-function profiler -----------------------------------------

vtal::Module mustAssembleVerified(const char *Src) {
  Expected<vtal::Module> M = vtal::assemble(Src);
  EXPECT_TRUE(M) << M.error().str();
  Error E = vtal::verifyModule(*M);
  EXPECT_FALSE(E) << E.str();
  return std::move(*M);
}

/// Three functions: `hot` burns a big loop, `cold` returns immediately,
/// and `outer` calls both — so the ranking must rely on *self*-fuel
/// attribution, not whole-activation fuel.
constexpr const char *kProfiledModule = R"(
module profiled
func hot (n: int) -> int {
  locals (i: int)
  push.i 0
  store i
loop:
  load i
  load n
  ge
  brif done
  load i
  push.i 1
  add
  store i
  br loop
done:
  load i
  ret
}
func cold () -> int {
  push.i 1
  ret
}
func outer (n: int) -> int {
  load n
  call hot
  call cold
  add
  ret
}
func trapper (n: int) -> int {
  push.i 1
  load n
  div
  ret
}
)";

TEST(VtalProfilerTest, RankingSurfacesTheInjectedHotFunction) {
#ifdef DSU_VTAL_NO_PROFILER
  GTEST_SKIP() << "profiler hooks compiled out (DSU_VTAL_PROFILER=OFF)";
#endif
  ProfileRegistry::instance().clearForTest();
  vtal::Module M = mustAssembleVerified(kProfiledModule);
  std::vector<std::string> Names;
  for (const vtal::Function &F : M.Functions)
    Names.push_back(F.Name);
  std::shared_ptr<ModuleProfile> Prof =
      ProfileRegistry::instance().create("p-hot", M.Name, Names);

  vtal::Interpreter I(M);
  I.setProfile(Prof.get());
  for (int K = 0; K != 200; ++K) {
    Expected<vtal::Value> R =
        I.call("outer", {vtal::Value::makeInt(500)});
    ASSERT_TRUE(R) << R.error().str();
    EXPECT_EQ(R->asInt(), 501);
  }

  std::vector<HotFn> Top = ProfileRegistry::instance().ranking(2);
  ASSERT_GE(Top.size(), 1u);
  EXPECT_EQ(Top[0].Fn, "hot");
  EXPECT_EQ(Top[0].Module, "profiled");
  EXPECT_EQ(Top[0].PatchId, "p-hot");
  EXPECT_EQ(Top[0].Calls, 200u);
  // Self-fuel: hot's loop dwarfs outer's glue even though outer's
  // whole-activation fuel includes hot's.
  uint64_t OuterFuel = 0, ColdFuel = 0;
  for (const HotFn &F : ProfileRegistry::instance().ranking(0)) {
    if (F.Fn == "outer")
      OuterFuel = F.SelfFuel;
    if (F.Fn == "cold")
      ColdFuel = F.SelfFuel;
  }
  EXPECT_GT(Top[0].SelfFuel, OuterFuel * 10);
  EXPECT_GT(Top[0].SelfFuel, 500u * 200u);
  EXPECT_LT(ColdFuel, 10u * 200u);

  ProfileRegistry::Totals T = ProfileRegistry::instance().totals();
  EXPECT_EQ(T.Calls, 200u * 3u); // outer + hot + cold activations
  EXPECT_EQ(T.Traps, 0u);
  EXPECT_GT(T.Fuel, 0u);

  std::string J = profileJson(3);
  EXPECT_NE(J.find("\"fn\":\"hot\""), std::string::npos);
  EXPECT_NE(J.find("\"total_calls\":600"), std::string::npos);
  // Ranked hottest-first: hot's row precedes outer's.
  EXPECT_LT(J.find("\"fn\":\"hot\""), J.find("\"fn\":\"outer\""));
}

TEST(VtalProfilerTest, CountsTrapsAndSamplesActivationTime) {
#ifdef DSU_VTAL_NO_PROFILER
  GTEST_SKIP() << "profiler hooks compiled out (DSU_VTAL_PROFILER=OFF)";
#endif
  ProfileRegistry::instance().clearForTest();
  vtal::Module M = mustAssembleVerified(kProfiledModule);
  std::vector<std::string> Names;
  for (const vtal::Function &F : M.Functions)
    Names.push_back(F.Name);
  std::shared_ptr<ModuleProfile> Prof =
      ProfileRegistry::instance().create("p-trap", M.Name, Names);

  vtal::Interpreter I(M);
  I.setProfile(Prof.get());
  EXPECT_FALSE(I.call("trapper", {vtal::Value::makeInt(0)})); // div by 0
  ASSERT_TRUE(I.call("trapper", {vtal::Value::makeInt(2)}));
  // Activation 0 of each public entry is sampled (SampleEvery-aligned).
  for (int K = 0; K != 2; ++K)
    ASSERT_TRUE(I.call("hot", {vtal::Value::makeInt(10)}));

  EXPECT_EQ(ProfileRegistry::instance().totals().Traps, 1u);
  uint64_t Samples = 0;
  for (const HotFn &F : ProfileRegistry::instance().ranking(0)) {
    if (F.Fn == "trapper") {
      EXPECT_EQ(F.Traps, 1u);
    }
    Samples += F.Samples;
  }
  EXPECT_GE(Samples, 1u);

  // resetAll() zeroes the window but keeps the registrations.
  ProfileRegistry::instance().resetAll();
  EXPECT_EQ(ProfileRegistry::instance().totals().Calls, 0u);
  EXPECT_EQ(ProfileRegistry::instance().totals().Traps, 0u);
}

TEST(VtalProfilerTest, UnattachedInterpreterRecordsNothing) {
  ProfileRegistry::instance().clearForTest();
  vtal::Module M = mustAssembleVerified(kProfiledModule);
  vtal::Interpreter I(M); // no setProfile
  ASSERT_TRUE(I.call("hot", {vtal::Value::makeInt(100)}));
  EXPECT_EQ(ProfileRegistry::instance().totals().Calls, 0u);
}

} // namespace
