//===- tests/test_persist.cpp - Durable update journal --------------------===//
///
/// The crash-safe persistence layer end to end: journal roundtrips,
/// torn-tail and bad-checksum recovery, single-writer locking, the
/// clean-stop vs. crash boot distinction, the crash-loop quarantine
/// policy, in-process replay equivalence — and subprocess crash drills
/// that SIGKILL a live dsu-flashed server at each injected crash point
/// under keep-alive load, restart it through dsu-supervise, and assert
/// the replayed chain serves byte-identical responses.
///
/// Run alone with `ctest -L persist`.  The subprocess drills kill child
/// processes, so this binary is excluded from the TSan lane.

#include "core/Runtime.h"
#include "flashed/App.h"
#include "flashed/Client.h"
#include "flashed/DocStore.h"
#include "persist/Journal.h"
#include "persist/Replay.h"
#include "runtime/UpdateController.h"
#include "support/MemoryBuffer.h"
#include "support/StringUtil.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace dsu;
using namespace dsu::flashed;

namespace {

#define WAIT_FOR(Pred)                                                     \
  do {                                                                     \
    int Spin_ = 0;                                                         \
    while (!(Pred) && Spin_++ != 5000)                                     \
      std::this_thread::sleep_for(std::chrono::milliseconds(2));           \
    ASSERT_TRUE(Pred) << "timed out waiting for: " #Pred;                  \
  } while (0)

/// A code-only patch making mime_type return the constant \p CType — a
/// response byte every crash-recovery assertion can see on the wire.
std::string mimePatch(const std::string &Id, const std::string &CType) {
  return formatString(R"dsu(
(patch
  (id "%s")
  (description "persist test: mime_type constant")
  (provides
    (fn (name "flashed.mime_type")
        (type "fn(string) -> string")
        (vtal-fn "mime_type")))
  (vtal-module
"module persist_mime
func mime_type (path: string) -> string {
  push.s \"%s\"
  ret
}"))
)dsu",
                      Id.c_str(), CType.c_str());
}

/// Parses and loads fine but fails VTAL verification in staging (an int
/// returned from a -> string function): exercises the RolledBack seal
/// without ever reaching a commit point.
const char *BadVerifyPatch = R"dsu(
(patch
  (id "persist-bad-verify")
  (description "persist test: fails verification after the intent")
  (provides
    (fn (name "flashed.mime_type")
        (type "fn(string) -> string")
        (vtal-fn "mime_type")))
  (vtal-module
"module persist_bad
func mime_type (path: string) -> string {
  push.i 7
  ret
}"))
)dsu";

std::string freshDir(const std::string &Name) {
  std::string D = ::testing::TempDir() + "dsu_persist_" + Name;
  std::system(("rm -rf '" + D + "' '" + D + ".port' '" + D + ".log'")
                  .c_str());
  return D;
}

std::unique_ptr<persist::UpdateJournal> openJ(const std::string &Dir,
                                              unsigned QuarantineAfter = 3) {
  persist::UpdateJournal::Options O;
  O.QuarantineAfter = QuarantineAfter;
  O.Sync = false; // the tests assert ordering/content, not durability
  Expected<std::unique_ptr<persist::UpdateJournal>> J =
      persist::UpdateJournal::open(Dir, O);
  EXPECT_TRUE(J) << (J ? "" : J.error().str());
  return J ? std::move(*J) : nullptr;
}

// --- Journal unit coverage ----------------------------------------------

TEST(JournalTest, RoundtripAcrossReopen) {
  std::string Dir = freshDir("roundtrip");
  std::string Art = mimePatch("persist-rt", "text/x-rt");
  std::string Hash = persist::UpdateJournal::artifactHash(Art);
  {
    auto J = openJ(Dir);
    ASSERT_TRUE(J);
    persist::BootInfo B = J->beginBoot("");
    EXPECT_EQ(B.Boots, 1u);
    EXPECT_FALSE(B.PrevCrashed);
    Expected<uint64_t> Seq =
        J->appendIntent("persist-rt", Art, persist::IntentOrigin::Operator);
    ASSERT_TRUE(Seq) << Seq.takeError().str();
    ASSERT_FALSE(J->appendSeal(*Seq, persist::SealOutcome::Committed,
                               "barrier", ""));
    ASSERT_FALSE(J->sealCleanShutdown());
  }
  {
    auto J = openJ(Dir);
    ASSERT_TRUE(J);
    persist::BootInfo B = J->beginBoot("");
    EXPECT_EQ(B.Boots, 2u);
    EXPECT_FALSE(B.PrevCrashed);
    EXPECT_EQ(B.CrashSealed, 0u);

    std::vector<persist::ChainEntry> Chain = J->committedChain();
    ASSERT_EQ(Chain.size(), 1u);
    EXPECT_EQ(Chain[0].PatchId, "persist-rt");
    EXPECT_EQ(Chain[0].Hash, Hash);

    Expected<std::string> Back = J->readArtifact(Hash);
    ASSERT_TRUE(Back) << Back.takeError().str();
    EXPECT_EQ(*Back, Art);

    // boot, intent, seal, clean-shutdown, boot — in sequence order.
    std::vector<persist::JournalRecord> Recs = J->records();
    ASSERT_EQ(Recs.size(), 5u);
    EXPECT_EQ(Recs[0].Kind, persist::RecordKind::BootStart);
    EXPECT_EQ(Recs[1].Kind, persist::RecordKind::Intent);
    EXPECT_EQ(Recs[1].Attempt, 1u);
    EXPECT_EQ(Recs[2].Kind, persist::RecordKind::Seal);
    EXPECT_EQ(Recs[2].Outcome, persist::SealOutcome::Committed);
    EXPECT_EQ(Recs[2].CommitMode, "barrier");
    EXPECT_EQ(Recs[3].Kind, persist::RecordKind::CleanShutdown);
    EXPECT_EQ(Recs[4].Kind, persist::RecordKind::BootStart);
    for (size_t I = 0; I != Recs.size(); ++I)
      EXPECT_EQ(Recs[I].Seq, I + 1);
  }
}

TEST(JournalTest, TornTailIsTruncatedOnReopen) {
  std::string Dir = freshDir("torn");
  size_t Intact;
  {
    auto J = openJ(Dir);
    ASSERT_TRUE(J);
    J->beginBoot("");
    Expected<uint64_t> Seq = J->appendIntent(
        "torn-a", mimePatch("torn-a", "text/x-a"),
        persist::IntentOrigin::Operator);
    ASSERT_TRUE(Seq);
    ASSERT_FALSE(
        J->appendSeal(*Seq, persist::SealOutcome::Committed, "rolling", ""));
    Intact = J->records().size();
  }
  // A torn append: a frame header promising 100 bytes with only 10
  // behind it — exactly what a crash mid-write leaves.
  {
    int Fd = ::open((Dir + "/journal.log").c_str(), O_WRONLY | O_APPEND);
    ASSERT_GE(Fd, 0);
    uint32_t Len = 100;
    char Torn[14];
    std::memcpy(Torn, &Len, 4);
    std::memset(Torn + 4, 0xAB, 10);
    ASSERT_EQ(::write(Fd, Torn, sizeof(Torn)),
              static_cast<ssize_t>(sizeof(Torn)));
    ::close(Fd);
  }
  {
    auto J = openJ(Dir);
    ASSERT_TRUE(J);
    EXPECT_EQ(J->records().size(), Intact) << "torn tail not dropped";
    EXPECT_EQ(J->committedChain().size(), 1u);
    // The truncation leaves a cleanly appendable log.
    J->beginBoot("");
    Expected<uint64_t> Seq = J->appendIntent(
        "torn-b", mimePatch("torn-b", "text/x-b"),
        persist::IntentOrigin::Operator);
    ASSERT_TRUE(Seq) << Seq.takeError().str();
  }
  {
    auto J = openJ(Dir);
    ASSERT_TRUE(J);
    EXPECT_EQ(J->records().size(), Intact + 2u); // boot + intent survive
  }
}

TEST(JournalTest, CorruptedChecksumStopsTheScan) {
  std::string Dir = freshDir("corrupt");
  size_t Intact;
  {
    auto J = openJ(Dir);
    ASSERT_TRUE(J);
    J->beginBoot("");
    Expected<uint64_t> Seq = J->appendIntent(
        "corrupt-a", mimePatch("corrupt-a", "text/x-a"),
        persist::IntentOrigin::Operator);
    ASSERT_TRUE(Seq);
    ASSERT_FALSE(
        J->appendSeal(*Seq, persist::SealOutcome::Committed, "rolling", ""));
    Intact = J->records().size();
  }
  // Flip one byte inside the final record: its FNV-64 check must fail
  // and the scan must stop there, dropping the record.
  {
    Expected<std::string> Log = readFile(Dir + "/journal.log");
    ASSERT_TRUE(Log);
    ASSERT_GT(Log->size(), 12u);
    (*Log)[Log->size() - 10] ^= 0x5A;
    ASSERT_FALSE(writeFile(Dir + "/journal.log", *Log));
  }
  {
    auto J = openJ(Dir);
    ASSERT_TRUE(J);
    EXPECT_EQ(J->records().size(), Intact - 1u);
    // The dropped record was the Committed seal, so the chain is empty:
    // a patch whose seal never made it to disk is not replayed.
    EXPECT_TRUE(J->committedChain().empty());
  }
}

TEST(JournalTest, CorruptedStoreArtifactIsRefused) {
  std::string Dir = freshDir("badstore");
  std::string Art = mimePatch("store-a", "text/x-a");
  std::string Hash = persist::UpdateJournal::artifactHash(Art);
  auto J = openJ(Dir);
  ASSERT_TRUE(J);
  J->beginBoot("");
  ASSERT_TRUE(
      J->appendIntent("store-a", Art, persist::IntentOrigin::Operator));
  ASSERT_FALSE(writeFile(Dir + "/store/" + Hash + ".dsup", "tampered"));
  Expected<std::string> Back = J->readArtifact(Hash);
  ASSERT_FALSE(Back);
  EXPECT_EQ(Back.error().code(), ErrorCode::EC_Corrupt)
      << Back.error().str();
}

TEST(JournalTest, SecondLiveInstanceIsRefused) {
  std::string Dir = freshDir("lock");
  auto J1 = openJ(Dir);
  ASSERT_TRUE(J1);
  Expected<std::unique_ptr<persist::UpdateJournal>> J2 =
      persist::UpdateJournal::open(Dir);
  ASSERT_FALSE(J2) << "second instance acquired the journal lock";
  EXPECT_EQ(J2.error().code(), ErrorCode::EC_IO);
  std::string Msg = J2.error().str();
  EXPECT_NE(Msg.find("locked by live process"), std::string::npos) << Msg;
  EXPECT_NE(Msg.find(std::to_string(::getpid())), std::string::npos)
      << "refusal does not name the holder pid: " << Msg;

  // The lock dies with the holder: release and reopen.
  J1.reset();
  auto J3 = openJ(Dir);
  EXPECT_TRUE(J3);
}

TEST(JournalTest, CleanStopAndCrashAreSealedDifferently) {
  std::string Dir = freshDir("cleanvscrash");
  std::string Art = mimePatch("cvs-a", "text/x-a");
  // Boot 1 stages an intent and stops cleanly before its commit point.
  {
    auto J = openJ(Dir);
    ASSERT_TRUE(J);
    J->beginBoot("");
    ASSERT_TRUE(
        J->appendIntent("cvs-a", Art, persist::IntentOrigin::Operator));
    ASSERT_FALSE(J->sealCleanShutdown());
  }
  // Boot 2: the unsealed intent is RolledBack — no crash accounting —
  // then a second intent is left open with NO clean shutdown.
  {
    auto J = openJ(Dir);
    ASSERT_TRUE(J);
    persist::BootInfo B = J->beginBoot("");
    EXPECT_FALSE(B.PrevCrashed);
    EXPECT_EQ(B.CrashSealed, 0u);
    std::vector<persist::JournalRecord> Recs = J->records();
    const persist::JournalRecord &Seal = Recs[Recs.size() - 2];
    ASSERT_EQ(Seal.Kind, persist::RecordKind::Seal);
    EXPECT_EQ(Seal.Outcome, persist::SealOutcome::RolledBack);
    EXPECT_NE(Seal.Reason.find("cleanly"), std::string::npos) << Seal.Reason;
    ASSERT_TRUE(
        J->appendIntent("cvs-a", Art, persist::IntentOrigin::Operator));
    // no sealCleanShutdown: this run "crashes"
  }
  // Boot 3: that one is Crashed, with the supervisor's exit status woven
  // into the reason.
  {
    auto J = openJ(Dir);
    ASSERT_TRUE(J);
    persist::BootInfo B = J->beginBoot("signal:9");
    EXPECT_TRUE(B.PrevCrashed);
    EXPECT_EQ(B.CrashSealed, 1u);
    EXPECT_TRUE(B.NewlyQuarantined.empty());
    std::vector<persist::JournalRecord> Recs = J->records();
    const persist::JournalRecord &Seal = Recs[Recs.size() - 2];
    ASSERT_EQ(Seal.Kind, persist::RecordKind::Seal);
    EXPECT_EQ(Seal.Outcome, persist::SealOutcome::Crashed);
    EXPECT_NE(Seal.Reason.find("signal:9"), std::string::npos) << Seal.Reason;
    EXPECT_TRUE(J->committedChain().empty());
  }
}

TEST(JournalTest, CrashLoopTripsTheQuarantinePolicy) {
  std::string Dir = freshDir("quarantine");
  std::string Art = mimePatch("looper", "text/x-loop");
  std::string Hash = persist::UpdateJournal::artifactHash(Art);

  // Three consecutive boots each leave the looper's intent unsealed and
  // die; each next boot seals it Crashed, growing the streak.
  for (unsigned Boot = 0; Boot != 3; ++Boot) {
    auto J = openJ(Dir);
    ASSERT_TRUE(J);
    persist::BootInfo B = J->beginBoot("");
    EXPECT_TRUE(B.NewlyQuarantined.empty()) << "quarantined too early";
    Expected<uint64_t> Seq =
        J->appendIntent("looper", Art, persist::IntentOrigin::Operator);
    ASSERT_TRUE(Seq) << Seq.takeError().str();
    EXPECT_EQ(J->records().back().Attempt, Boot + 1);
  }

  // Boot 4 seals the third crash, the streak reaches QuarantineAfter=3,
  // and the hash is contained.
  auto J = openJ(Dir);
  ASSERT_TRUE(J);
  persist::BootInfo B = J->beginBoot("exit:134");
  ASSERT_EQ(B.NewlyQuarantined.size(), 1u);
  EXPECT_EQ(B.NewlyQuarantined[0], "looper");
  EXPECT_TRUE(J->isQuarantined(Hash));
  EXPECT_TRUE(J->committedChain().empty());

  std::vector<persist::QuarantineInfo> Q = J->quarantined();
  ASSERT_EQ(Q.size(), 1u);
  EXPECT_EQ(Q[0].PatchId, "looper");
  EXPECT_EQ(Q[0].Hash, Hash);
  EXPECT_EQ(Q[0].CrashCount, 3u);

  // Quarantined artifacts are refused at the intent, before any staging.
  Expected<uint64_t> Refused =
      J->appendIntent("looper", Art, persist::IntentOrigin::Operator);
  ASSERT_FALSE(Refused);
  EXPECT_EQ(Refused.error().code(), ErrorCode::EC_Invalid);
  EXPECT_NE(Refused.error().str().find("quarantined"), std::string::npos);
}

// --- In-process replay equivalence --------------------------------------

TEST(JournalReplayTest, ReplayRebuildsTheCommittedChain) {
  std::string Dir = freshDir("replay");
  // Session one: two committed patches and one verification failure.
  {
    auto J = openJ(Dir);
    ASSERT_TRUE(J);
    J->beginBoot("");
    Runtime RT;
    FlashedApp App(RT);
    DocStore Docs;
    Docs.put("/doc.html", "<html>persist</html>");
    ASSERT_FALSE(App.init(std::move(Docs)));
    RT.attachJournal(J.get());

    StagedUpdate S1 = RT.controller().stageArtifactText(
        mimePatch("persist-a", "text/x-persist-a"), "test");
    WAIT_FOR(S1.record().Phase == "ready");
    ASSERT_FALSE(S1.commit());
    StagedUpdate S2 = RT.controller().stageArtifactText(
        mimePatch("persist-b", "text/x-persist-b"), "test");
    WAIT_FOR(S2.record().Phase == "ready");
    ASSERT_FALSE(S2.commit());

    // The bad patch journals its intent (it parses), then fails VTAL
    // verification: Runtime::finalize must seal it RolledBack.
    StagedUpdate S3 =
        RT.controller().stageArtifactText(BadVerifyPatch, "test");
    WAIT_FOR(S3.record().Phase == "stage-failed");

    persist::JournalStatus St = J->status();
    EXPECT_EQ(St.ChainLength, 2u);
    std::vector<persist::JournalRecord> Recs = J->records();
    unsigned Committed = 0, RolledBack = 0;
    for (const persist::JournalRecord &R : Recs)
      if (R.Kind == persist::RecordKind::Seal) {
        Committed += R.Outcome == persist::SealOutcome::Committed;
        RolledBack += R.Outcome == persist::SealOutcome::RolledBack;
      }
    EXPECT_EQ(Committed, 2u);
    EXPECT_EQ(RolledBack, 1u);
    ASSERT_FALSE(J->sealCleanShutdown());
    RT.attachJournal(nullptr);
  }
  // Session two: replay through the ordinary pipeline and observe the
  // same behaviour the pre-restart server had.
  {
    auto J = openJ(Dir);
    ASSERT_TRUE(J);
    J->beginBoot("");
    Runtime RT;
    FlashedApp App(RT);
    DocStore Docs;
    Docs.put("/doc.html", "<html>persist</html>");
    ASSERT_FALSE(App.init(std::move(Docs)));
    RT.attachJournal(J.get());

    persist::ReplayStats St = persist::replayJournal(RT, *J);
    EXPECT_EQ(St.Attempted, 2u);
    EXPECT_EQ(St.Committed, 2u);
    EXPECT_EQ(St.Failed, 0u);
    EXPECT_EQ(RT.updatesApplied(), 2u);

    std::string Resp = App.handle("GET /doc.html HTTP/1.0\r\n\r\n");
    EXPECT_NE(Resp.find("text/x-persist-b"), std::string::npos)
        << "replayed chain does not serve the last committed binding:\n"
        << Resp;

    // Replay intents carry crash accounting but never extend the chain.
    EXPECT_EQ(J->status().ChainLength, 2u);
    persist::JournalStatus JS = J->status();
    EXPECT_EQ(JS.ReplayCommitted, 2u);
    RT.attachJournal(nullptr);
  }
}

// --- Subprocess crash drills --------------------------------------------

std::string toolPath(const char *Name) {
  return std::string(DSU_BIN_DIR) + "/tools/" + Name;
}

pid_t spawnProc(const std::vector<std::string> &Argv,
                const std::vector<std::pair<std::string, std::string>> &Env,
                const std::string &LogPath) {
  pid_t P = ::fork();
  if (P != 0)
    return P;
  int Fd = ::open(LogPath.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (Fd >= 0) {
    ::dup2(Fd, 1);
    ::dup2(Fd, 2);
    ::close(Fd);
  }
  for (const auto &KV : Env)
    ::setenv(KV.first.c_str(), KV.second.c_str(), 1);
  std::vector<char *> Args;
  Args.reserve(Argv.size() + 1);
  for (const std::string &A : Argv)
    Args.push_back(const_cast<char *>(A.c_str()));
  Args.push_back(nullptr);
  ::execv(Args[0], Args.data());
  _exit(127);
}

/// Polls the port file + /admin/status until the server answers.
bool waitServer(const std::string &PortFile, uint16_t &Port,
                int BudgetMs = 30000) {
  for (int Waited = 0; Waited < BudgetMs; Waited += 25) {
    Expected<std::string> S = readFile(PortFile);
    if (S) {
      uint64_t V = std::strtoull(S->c_str(), nullptr, 10);
      if (V && V < 65536) {
        Expected<FetchResult> R =
            httpGet(static_cast<uint16_t>(V), "/admin/status");
        if (R && R->Status == 200) {
          Port = static_cast<uint16_t>(V);
          return true;
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return false;
}

/// The server's pid, from the journal's flock'd pidfile.
pid_t serverPid(const std::string &Dir) {
  Expected<std::string> S = readFile(Dir + "/journal.lock");
  return S ? static_cast<pid_t>(std::strtol(S->c_str(), nullptr, 10)) : -1;
}

std::string contentTypeOf(uint16_t Port, const std::string &Target) {
  Expected<FetchResult> R = httpGet(Port, Target);
  if (!R)
    return "";
  size_t At = R->Headers.find("Content-Type: ");
  if (At == std::string::npos)
    return "";
  size_t End = R->Headers.find("\r\n", At);
  return R->Headers.substr(At + 14, End - At - 14);
}

std::vector<std::string> fetchAll(uint16_t Port,
                                  const std::vector<std::string> &Targets) {
  std::vector<std::string> Out;
  for (const std::string &T : Targets) {
    Expected<FetchResult> R = httpGet(Port, T);
    Out.push_back(R ? R->Headers + "\n\n" + R->Body : "(fetch failed)");
  }
  return Out;
}

/// RAII teardown for a supervised server tree: SIGTERM the supervisor
/// (which forwards to the child and expects a clean drain), escalate if
/// the tree wedges, and never leave an orphan holding the journal lock.
struct Supervised {
  pid_t Pid = -1;
  std::string Dir;

  /// The deliberate teardown path: clean stop, asserted.
  void stopCleanly() {
    ASSERT_GT(Pid, 0);
    ASSERT_EQ(::kill(Pid, SIGTERM), 0);
    int Status = 0;
    ASSERT_EQ(::waitpid(Pid, &Status, 0), Pid);
    EXPECT_TRUE(WIFEXITED(Status) && WEXITSTATUS(Status) == 0)
        << "supervised tree did not exit cleanly (status " << Status << ")";
    Pid = -1;
  }

  ~Supervised() {
    if (Pid <= 0)
      return; // an assertion bailed out mid-test: clean up the tree
    pid_t Child = serverPid(Dir);
    ::kill(Pid, SIGTERM);
    for (int I = 0; I != 200; ++I) {
      int Status = 0;
      if (::waitpid(Pid, &Status, WNOHANG) == Pid)
        return;
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    ::kill(Pid, SIGKILL);
    int Status = 0;
    (void)::waitpid(Pid, &Status, 0);
    if (Child > 0)
      ::kill(Child, SIGKILL);
  }
};

struct LiveLoad {
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Served{0};
  std::vector<std::thread> Threads;

  void start(uint16_t Port, unsigned N = 2) {
    for (unsigned T = 0; T != N; ++T)
      Threads.emplace_back([this, Port] {
        KeepAliveClient C;
        C.setTimeoutMs(500);
        (void)C.connectTo(Port);
        while (!Stop.load())
          if (C.get("/doc.html"))
            Served.fetch_add(1);
      });
  }
  void stop() {
    Stop.store(true);
    for (std::thread &T : Threads)
      T.join();
    Threads.clear();
  }
  ~LiveLoad() { stop(); }
};

class PersistE2ETest : public ::testing::Test {
protected:
  void SetUp() override {
    if (!fileExists(toolPath("dsu-flashed")) ||
        !fileExists(toolPath("dsu-supervise")))
      GTEST_SKIP() << "dsu-flashed / dsu-supervise not built";
  }

  /// Launches dsu-flashed under dsu-supervise with \p CrashPoint armed
  /// (via DSU_FAULT_CRASH_POINT) and waits for the first boot to serve.
  void launch(const std::string &Name, const std::string &CrashPoint,
              uint16_t &Port) {
    Dir = freshDir(Name);
    PortFile = Dir + ".port";
    Sup.Dir = Dir;
    std::vector<std::pair<std::string, std::string>> Env;
    if (!CrashPoint.empty())
      Env.emplace_back("DSU_FAULT_CRASH_POINT", CrashPoint);
    Sup.Pid = spawnProc(
        {toolPath("dsu-supervise"), "--backoff-ms", "10", "--max-restarts",
         "12", "--", toolPath("dsu-flashed"), "--journal-dir", Dir,
         "--port-file", PortFile, "--workers", "2", "--no-sync"},
        Env, Dir + ".log");
    ASSERT_GT(Sup.Pid, 0);
    ASSERT_TRUE(waitServer(PortFile, Port)) << logTail();
  }

  /// Stages \p Artifact over the wire and waits until the fleet serves
  /// \p CType (commits land at the reactors' idle hooks).
  void commitAndObserve(uint16_t Port, const std::string &Artifact,
                        const std::string &CType) {
    Expected<FetchResult> R =
        httpPost(Port, "/admin/patches", Artifact, "application/x-dsu-patch");
    ASSERT_TRUE(R);
    ASSERT_EQ(R->Status, 202) << R->Body;
    WAIT_FOR(contentTypeOf(Port, "/doc.html") == CType);
  }

  std::string logTail() {
    Expected<std::string> L = readFile(Dir + ".log");
    return L ? "server log:\n" + *L : "(no server log)";
  }

  std::string Dir, PortFile;
  Supervised Sup;
  const std::vector<std::string> Targets = {"/index.html", "/doc.html",
                                            "/style.css"};
};

/// The acceptance bar: SIGKILL between the Intent append and the seal,
/// under live keep-alive load; the restarted server must recover to the
/// last-good committed chain and serve byte-identical responses.
TEST_F(PersistE2ETest, KillBetweenIntentAndSealRecoversLastGoodChain) {
  uint16_t Port = 0;
  launch("e2e_intent", "crash_after_intent:persist-bad", Port);
  if (HasFatalFailure())
    return;
  commitAndObserve(Port, mimePatch("persist-a", "text/x-persist-a"),
                   "text/x-persist-a");
  if (HasFatalFailure())
    return;
  std::vector<std::string> Baseline = fetchAll(Port, Targets);

  LiveLoad Load;
  Load.start(Port);
  WAIT_FOR(Load.Served.load() >= 50);

  // The poisoned patch: its intent hits the disk, then the armed crash
  // point SIGKILLs the server before any seal can be written.
  std::remove(PortFile.c_str());
  (void)httpPost(Port, "/admin/patches",
                 mimePatch("persist-bad", "text/x-bad"),
                 "application/x-dsu-patch");

  uint16_t Port2 = 0;
  ASSERT_TRUE(waitServer(PortFile, Port2)) << logTail();
  Load.stop();

  EXPECT_EQ(fetchAll(Port2, Targets), Baseline)
      << "recovered chain does not serve byte-identical responses";

  // The mid-update death is surfaced: the bad intent is sealed crashed,
  // the boot is marked a crash recovery, and history shows both.
  Expected<FetchResult> Status = httpGet(Port2, "/admin/status");
  ASSERT_TRUE(Status);
  EXPECT_NE(Status->Body.find("\"prev_boot\": \"crash\""), std::string::npos)
      << Status->Body;
  Expected<FetchResult> Hist = httpGet(Port2, "/admin/journal");
  ASSERT_TRUE(Hist);
  EXPECT_EQ(Hist->Status, 200);
  EXPECT_NE(Hist->Body.find("persist-bad"), std::string::npos) << Hist->Body;
  EXPECT_NE(Hist->Body.find("\"outcome\": \"crashed\""), std::string::npos)
      << Hist->Body;
  EXPECT_NE(Hist->Body.find("signal:9"), std::string::npos)
      << "supervisor exit status not woven into the crash seal: "
      << Hist->Body;

  Sup.stopCleanly();
}

/// SIGKILL after the commit landed but before the Committed seal: the
/// update never becomes durable, so the restarted server excludes it —
/// the journal's word, not the dead process's memory, is the truth.
TEST_F(PersistE2ETest, KillAfterCommitBeforeSealExcludesThePatch) {
  uint16_t Port = 0;
  launch("e2e_preseal", "crash_after_commit_pre_seal:persist-bad2", Port);
  if (HasFatalFailure())
    return;
  commitAndObserve(Port, mimePatch("persist-a", "text/x-persist-a"),
                   "text/x-persist-a");
  if (HasFatalFailure())
    return;
  std::vector<std::string> Baseline = fetchAll(Port, Targets);

  std::remove(PortFile.c_str());
  (void)httpPost(Port, "/admin/patches",
                 mimePatch("persist-bad2", "text/x-bad2"),
                 "application/x-dsu-patch");

  uint16_t Port2 = 0;
  ASSERT_TRUE(waitServer(PortFile, Port2)) << logTail();
  EXPECT_EQ(contentTypeOf(Port2, "/doc.html"), "text/x-persist-a")
      << "an unsealed commit leaked across the restart";
  EXPECT_EQ(fetchAll(Port2, Targets), Baseline);

  Expected<FetchResult> Hist = httpGet(Port2, "/admin/journal");
  ASSERT_TRUE(Hist);
  EXPECT_NE(Hist->Body.find("persist-bad2"), std::string::npos);
  EXPECT_NE(Hist->Body.find("\"outcome\": \"crashed\""), std::string::npos);

  Sup.stopCleanly();
}

/// A committed patch that kills the server during every replay is
/// quarantined after three consecutive crashed boots; the fourth boot
/// comes up healthy on the remaining chain with the patch contained.
TEST_F(PersistE2ETest, CrashLoopingPatchIsQuarantinedAfterThreeBoots) {
  uint16_t Port = 0;
  launch("e2e_quarantine", "crash_mid_replay:persist-looper", Port);
  if (HasFatalFailure())
    return;
  // Boot 1: the looper commits normally (the crash point only fires
  // during replay) and joins the durable chain.
  commitAndObserve(Port, mimePatch("persist-looper", "text/x-looper"),
                   "text/x-looper");
  if (HasFatalFailure())
    return;

  // Crash the server.  Boots 2-4 die replaying the looper; boot 4's
  // death trips the quarantine policy, and boot 5 serves healthy.
  pid_t Server = serverPid(Dir);
  ASSERT_GT(Server, 0);
  std::remove(PortFile.c_str());
  ASSERT_EQ(::kill(Server, SIGKILL), 0);

  uint16_t Port2 = 0;
  ASSERT_TRUE(waitServer(PortFile, Port2, 60000)) << logTail();
  EXPECT_NE(contentTypeOf(Port2, "/doc.html"), "text/x-looper")
      << "a quarantined patch was replayed anyway";

  Expected<FetchResult> Q = httpGet(Port2, "/admin/journal?quarantined=1");
  ASSERT_TRUE(Q);
  EXPECT_EQ(Q->Status, 200);
  EXPECT_NE(Q->Body.find("persist-looper"), std::string::npos) << Q->Body;
  Expected<FetchResult> Status = httpGet(Port2, "/admin/status");
  ASSERT_TRUE(Status);
  EXPECT_NE(Status->Body.find("\"quarantined\": 1"), std::string::npos)
      << Status->Body;

  // Re-submitting the quarantined artifact is refused at staging: the
  // update log records a stage failure naming the quarantine.
  Expected<FetchResult> Again =
      httpPost(Port2, "/admin/patches",
               mimePatch("persist-looper", "text/x-looper"),
               "application/x-dsu-patch");
  ASSERT_TRUE(Again);
  EXPECT_EQ(Again->Status, 202);
  WAIT_FOR([&] {
    Expected<FetchResult> Log = httpGet(Port2, "/admin/updates");
    return Log && Log->Body.find("quarantined") != std::string::npos;
  }());

  // The dsu-updatectl quarantine command sees the same table.
  std::string Ctl = toolPath("dsu-updatectl");
  if (fileExists(Ctl)) {
    std::string OutFile = Dir + ".ctl.out";
    int St = std::system((Ctl + " quarantine " + std::to_string(Port2) +
                          " > " + OutFile + " 2>&1")
                             .c_str());
    ASSERT_TRUE(WIFEXITED(St));
    EXPECT_EQ(WEXITSTATUS(St), 0);
    Expected<std::string> Out = readFile(OutFile);
    ASSERT_TRUE(Out);
    EXPECT_NE(Out->find("persist-looper"), std::string::npos) << *Out;
    std::remove(OutFile.c_str());
  }

  Sup.stopCleanly();
}

/// SIGTERM is a clean stop, not a crash: the drained server seals
/// CleanShutdown and the next boot performs no crash accounting.
TEST_F(PersistE2ETest, SigtermDrainsAndSealsCleanShutdown) {
  uint16_t Port = 0;
  launch("e2e_clean", "", Port);
  if (HasFatalFailure())
    return;
  commitAndObserve(Port, mimePatch("persist-a", "text/x-persist-a"),
                   "text/x-persist-a");
  if (HasFatalFailure())
    return;
  Sup.stopCleanly();

  // The journal's last word is CleanShutdown, and the next boot agrees
  // this was deliberate.
  auto J = openJ(Dir);
  ASSERT_TRUE(J);
  std::vector<persist::JournalRecord> Recs = J->records();
  ASSERT_FALSE(Recs.empty());
  EXPECT_EQ(Recs.back().Kind, persist::RecordKind::CleanShutdown);
  persist::BootInfo B = J->beginBoot("");
  EXPECT_FALSE(B.PrevCrashed);
  EXPECT_EQ(B.CrashSealed, 0u);
  EXPECT_EQ(J->committedChain().size(), 1u);
}

} // namespace
