//===- tests/test_vtal_asm.cpp - VTAL assembler tests ---------*- C++ -*-===//

#include "vtal/Assembler.h"

#include <gtest/gtest.h>

using namespace dsu;
using namespace dsu::vtal;

namespace {

const char *FactSource = R"(
; iterative factorial
module fact
func fact (n: int) -> int {
  locals (acc: int, i: int)
  push.i 1
  store acc
  push.i 1
  store i
loop:
  load i
  load n
  gt
  brif done
  load acc
  load i
  mul
  store acc
  load i
  push.i 1
  add
  store i
  br loop
done:
  load acc
  ret
}
)";

TEST(AssemblerTest, AssemblesFactorial) {
  Expected<Module> M = assemble(FactSource);
  ASSERT_TRUE(M) << M.error().str();
  EXPECT_EQ(M->Name, "fact");
  ASSERT_EQ(M->Functions.size(), 1u);
  const Function &F = M->Functions[0];
  EXPECT_EQ(F.Name, "fact");
  EXPECT_EQ(F.numParams(), 1u);
  EXPECT_EQ(F.Locals.size(), 3u);
  EXPECT_EQ(F.Sig.str(), "(int) -> int");
  EXPECT_GT(F.Code.size(), 10u);
}

TEST(AssemblerTest, LabelsResolveForwardAndBack) {
  Expected<Module> M = assemble(FactSource);
  ASSERT_TRUE(M);
  const Function &F = M->Functions[0];
  // "brif done" must point past "br loop".
  bool SawBrif = false, SawBr = false;
  for (const Instruction &I : F.Code) {
    if (I.Op == Opcode::BrIf) {
      SawBrif = true;
      EXPECT_GT(I.Index, 0u);
      EXPECT_LT(I.Index, F.Code.size());
    }
    if (I.Op == Opcode::Br) {
      SawBr = true;
      EXPECT_EQ(F.Code[I.Index].Op, Opcode::Load); // top of loop
    }
  }
  EXPECT_TRUE(SawBrif);
  EXPECT_TRUE(SawBr);
}

TEST(AssemblerTest, ImportsAndMultipleFunctions) {
  Expected<Module> M = assemble(R"(
module multi
import log : (string) -> unit
func helper (x: int) -> int {
  load x
  push.i 2
  mul
  ret
}
func main (x: int) -> int {
  push.s "starting"
  call log
  load x
  call helper
  ret
}
)");
  ASSERT_TRUE(M) << M.error().str();
  ASSERT_EQ(M->Imports.size(), 1u);
  EXPECT_EQ(M->Imports[0].Name, "log");
  EXPECT_EQ(M->Imports[0].Sig.str(), "(string) -> unit");
  EXPECT_NE(M->findFunction("helper"), nullptr);
  EXPECT_NE(M->findFunction("main"), nullptr);
  EXPECT_EQ(M->findFunction("absent"), nullptr);
  EXPECT_NE(M->findImport("log"), nullptr);
}

TEST(AssemblerTest, StringEscapes) {
  Expected<Module> M = assemble(R"(
module s
func f () -> string {
  push.s "a\"b\\c\nd"
  ret
}
)");
  ASSERT_TRUE(M) << M.error().str();
  EXPECT_EQ(M->Functions[0].Code[0].StrOp, "a\"b\\c\nd");
}

TEST(AssemblerTest, FloatAndBoolOperands) {
  Expected<Module> M = assemble(R"(
module fb
func f () -> float {
  push.b true
  brif yes
  push.f 1.5
  ret
yes:
  push.f -2.25
  ret
}
)");
  ASSERT_TRUE(M) << M.error().str();
  EXPECT_EQ(M->Functions[0].Code[0].IntOp, 1);
  EXPECT_DOUBLE_EQ(M->Functions[0].Code[2].FloatOp, 1.5);
}

TEST(AssemblerTest, ModulePrintIsStable) {
  Expected<Module> M = assemble(FactSource);
  ASSERT_TRUE(M);
  std::string S = M->str();
  EXPECT_NE(S.find("module fact"), std::string::npos);
  EXPECT_NE(S.find("func fact"), std::string::npos);
}

struct AsmErrorCase {
  const char *Name;
  const char *Source;
};

class AssemblerErrors : public ::testing::TestWithParam<AsmErrorCase> {};

TEST_P(AssemblerErrors, Rejected) {
  Expected<Module> M = assemble(GetParam().Source);
  EXPECT_FALSE(M) << "accepted: " << GetParam().Name;
  if (!M)
    EXPECT_EQ(M.error().code(), ErrorCode::EC_Parse);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AssemblerErrors,
    ::testing::Values(
        AsmErrorCase{"no_module", "func f () -> int {\nret\n}"},
        AsmErrorCase{"missing_name", "module\n"},
        AsmErrorCase{"unterminated_func",
                     "module m\nfunc f () -> int {\npush.i 1\nret"},
        AsmErrorCase{"bad_mnemonic",
                     "module m\nfunc f () -> int {\nfrobnicate\n}"},
        AsmErrorCase{"unknown_local",
                     "module m\nfunc f () -> int {\nload q\nret\n}"},
        AsmErrorCase{"undefined_label",
                     "module m\nfunc f () -> int {\nbr nowhere\nret\n}"},
        AsmErrorCase{"duplicate_label",
                     "module m\nfunc f () -> unit {\na:\na:\nret\n}"},
        AsmErrorCase{"duplicate_function",
                     "module m\nfunc f () -> unit {\nret\n}\n"
                     "func f () -> unit {\nret\n}"},
        AsmErrorCase{"bad_int_operand",
                     "module m\nfunc f () -> int {\npush.i 1x\nret\n}"},
        AsmErrorCase{"unquoted_string",
                     "module m\nfunc f () -> string {\npush.s hi\nret\n}"},
        AsmErrorCase{"bad_bool",
                     "module m\nfunc f () -> int {\npush.b maybe\nret\n}"},
        AsmErrorCase{"unit_local",
                     "module m\nfunc f () -> unit {\nlocals (u: unit)\n"
                     "ret\n}"},
        AsmErrorCase{"bad_import", "module m\nimport x\n"},
        AsmErrorCase{"operand_on_nullary",
                     "module m\nfunc f () -> int {\nadd 3\nret\n}"}),
    [](const ::testing::TestParamInfo<AsmErrorCase> &Info) {
      return Info.param.Name;
    });

TEST(SignatureTest, ParsePrintRoundTrip) {
  for (const char *Text :
       {"() -> unit", "(int) -> int", "(int, float, string) -> bool",
        "(bool) -> string"}) {
    Expected<Signature> Sig = parseSignature(Text);
    ASSERT_TRUE(Sig) << Text;
    Expected<Signature> Back = parseSignature(Sig->str());
    ASSERT_TRUE(Back);
    EXPECT_TRUE(*Sig == *Back) << Text;
  }
}

TEST(SignatureTest, Rejects) {
  EXPECT_FALSE(parseSignature("int -> int"));
  EXPECT_FALSE(parseSignature("(unit) -> int"));
  EXPECT_FALSE(parseSignature("(int)"));
  EXPECT_FALSE(parseSignature("(int) -> void"));
}

} // namespace
