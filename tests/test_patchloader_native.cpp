//===- tests/test_patchloader_native.cpp - dlopen patch tests -*- C++ -*-===//
///
/// The dlopen path end to end: load the native patch shared objects built
/// under patches/, apply them through the runtime, and observe the new
/// behaviour — the exact mechanism of the PLDI 2001 system (with
/// `extern "C"` exports defeating C++ name mangling).

#include "core/Runtime.h"
#include "flashed/App.h"
#include "link/NativeLoader.h"
#include "patch/PatchLoader.h"
#include "types/TypeParser.h"

#include <gtest/gtest.h>

using namespace dsu;

namespace {

std::string patchPath(const char *Name) {
  return std::string(DSU_PATCH_DIR) + "/" + Name;
}

int64_t fibV1(int64_t N) { return N < 2 ? N : fibV1(N - 1) + fibV1(N - 2); }
int64_t scaleV1(int64_t X) { return X * 1000; }

class NativePatchTest : public ::testing::Test {
protected:
  void SetUp() override {
    Fib = cantFail(RT.defineUpdateable("math.fib", &fibV1));
    Scale = cantFail(RT.defineUpdateable("math.scale", &scaleV1));
    cantFail(RT.defineNamedType({"counter", 1},
                                *parseType(RT.types(), "int")));
    Counter = cantFail(RT.defineState("math.counter",
                                      RT.types().namedType("counter", 1),
                                      std::make_shared<int64_t>(5)));
  }

  Runtime RT;
  Updateable<int64_t(int64_t)> Fib, Scale;
  StateCell *Counter = nullptr;
};

TEST_F(NativePatchTest, LoadReadsManifestAndCode) {
  Expected<Patch> P = loadNativePatch(RT.types(), patchPath("mathlib_v2.so"));
  ASSERT_TRUE(P) << P.takeError().str();
  EXPECT_EQ(P->Id, "mathlib-v2-native");
  EXPECT_EQ(P->Unit.Provides.size(), 3u);
  EXPECT_EQ(P->NewTypes.size(), 1u);
  EXPECT_EQ(P->Transformers.size(), 1u);
  EXPECT_GT(P->CodeBytes, 0u);
  EXPECT_EQ(P->SourcePath, patchPath("mathlib_v2.so"));
}

TEST_F(NativePatchTest, AppliesAndChangesBehaviour) {
  EXPECT_EQ(Fib(20), 6765);
  EXPECT_EQ(Scale(3), 3000);

  ASSERT_FALSE(RT.requestUpdateFromFile(patchPath("mathlib_v2.so")));
  ASSERT_EQ(RT.updatePoint(), 1u);

  // Same results where semantics agree, new semantics where they differ.
  EXPECT_EQ(Fib(20), 6765);
  EXPECT_EQ(Fib(40), 102334155); // iterative version is fast enough
  EXPECT_EQ(Scale(3), 3000000);  // micro-units now
  EXPECT_EQ(Fib.version(), 2u);

  // The new function is available.
  auto Cube = cantFail(bindUpdateable<int64_t(int64_t)>(
      RT.updateables(), RT.types(), "math.cube"));
  EXPECT_EQ(Cube(7), 343);

  // The native transformer migrated the counter (x1000 into micro).
  EXPECT_EQ(Counter->type()->str(), "%counter@2");
  EXPECT_EQ(*Counter->get<int64_t>(), 5000);

  auto Log = RT.updateLog();
  ASSERT_EQ(Log.size(), 1u);
  EXPECT_TRUE(Log[0].Succeeded);
  EXPECT_EQ(Log[0].CellsMigrated, 1u);
  EXPECT_EQ(Log[0].ProvidesLinked, 3u);
  // Native patches skip VTAL verification.
  EXPECT_EQ(Log[0].InstructionsVerified, 0u);
}

TEST_F(NativePatchTest, IllTypedPatchRejectedWithoutMutation) {
  Error E = RT.requestUpdateFromFile(patchPath("badpatch_type_mismatch.so"));
  ASSERT_FALSE(E) << E.str(); // loading succeeds; applying must fail
  EXPECT_EQ(RT.updatePoint(), 0u);

  auto Log = RT.updateLog();
  ASSERT_EQ(Log.size(), 1u);
  EXPECT_FALSE(Log[0].Succeeded);
  EXPECT_NE(Log[0].FailureReason.find("type"), std::string::npos);

  EXPECT_EQ(Fib(10), 55);
  EXPECT_EQ(Fib.version(), 1u);
}

TEST_F(NativePatchTest, RawLibraryInterface) {
  Expected<std::shared_ptr<LoadedLibrary>> Lib =
      LoadedLibrary::open(patchPath("mathlib_v2.so"));
  ASSERT_TRUE(Lib) << Lib.takeError().str();
  Expected<std::string> Manifest = readPatchManifest(**Lib);
  ASSERT_TRUE(Manifest);
  EXPECT_NE(Manifest->find("mathlib-v2-native"), std::string::npos);

  Expected<void *> Sym = (*Lib)->symbol("dsu_mathv2_cube");
  ASSERT_TRUE(Sym);
  auto Cube = reinterpret_cast<int64_t (*)(void *, int64_t)>(*Sym);
  EXPECT_EQ(Cube(nullptr, 4), 64);

  EXPECT_FALSE((*Lib)->symbol("no_such_symbol"));
}

TEST_F(NativePatchTest, LoadPatchFileDispatchesOnExtension) {
  Expected<Patch> P = loadPatchFile(RT.types(), RT.exports(),
                                    patchPath("mathlib_v2.so"));
  ASSERT_TRUE(P) << P.takeError().str();
  EXPECT_EQ(P->Id, "mathlib-v2-native");
}

TEST(FlashedNativePatchTest, P1FixesQueryParsing) {
  Runtime RT;
  flashed::FlashedApp App(RT);
  flashed::DocStore Docs;
  Docs.put("/doc.html", "<html>hi</html>");
  ASSERT_FALSE(App.init(std::move(Docs)));

  std::string Request = "GET /doc.html?q=1 HTTP/1.0\r\n\r\n";
  EXPECT_NE(App.handle(Request).find("404"), std::string::npos);

  ASSERT_FALSE(RT.requestUpdateFromFile(patchPath("p1_parsefix.so")));
  ASSERT_EQ(RT.updatePoint(), 1u);

  std::string After = App.handle(Request);
  EXPECT_NE(After.find("200 OK"), std::string::npos);
  EXPECT_NE(After.find("<html>hi</html>"), std::string::npos);
}

} // namespace
