//===- tests/test_support.cpp - Support substrate tests -------*- C++ -*-===//

#include "support/Error.h"
#include "support/Hashing.h"
#include "support/MemoryBuffer.h"
#include "support/SExpr.h"
#include "support/StringUtil.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace dsu;

// --- Error / Expected ----------------------------------------------------

TEST(ErrorTest, SuccessIsFalsy) {
  Error E = Error::success();
  EXPECT_FALSE(E);
  EXPECT_EQ(E.str(), "success");
}

TEST(ErrorTest, FailureCarriesCodeAndMessage) {
  Error E = Error::make(ErrorCode::EC_Verify, "pc %d is bad", 7);
  EXPECT_TRUE(E);
  EXPECT_EQ(E.code(), ErrorCode::EC_Verify);
  EXPECT_EQ(E.message(), "pc 7 is bad");
  EXPECT_EQ(E.str(), "verify: pc 7 is bad");
}

TEST(ErrorTest, WithContextPrefixes) {
  Error E = Error::make(ErrorCode::EC_Link, "no symbol");
  Error E2 = E.withContext("patch P1");
  EXPECT_EQ(E2.str(), "link: patch P1: no symbol");
  EXPECT_EQ(E2.code(), ErrorCode::EC_Link);
}

TEST(ErrorTest, WithContextOnSuccessIsNoop) {
  EXPECT_FALSE(Error::success().withContext("ctx"));
}

TEST(ErrorTest, AllCodesHaveNames) {
  for (int C = 0; C <= static_cast<int>(ErrorCode::EC_Unsupported); ++C)
    EXPECT_STRNE(errorCodeName(static_cast<ErrorCode>(C)), "unknown");
}

TEST(ExpectedTest, HoldsValue) {
  Expected<int> V(42);
  ASSERT_TRUE(V);
  EXPECT_EQ(*V, 42);
  EXPECT_FALSE(V.takeError());
}

TEST(ExpectedTest, HoldsError) {
  Expected<int> V(Error::make(ErrorCode::EC_IO, "gone"));
  ASSERT_FALSE(V);
  EXPECT_EQ(V.error().code(), ErrorCode::EC_IO);
  Error E = V.takeError();
  EXPECT_TRUE(E);
}

TEST(ExpectedTest, MoveOnlyValues) {
  Expected<std::unique_ptr<int>> V(std::make_unique<int>(5));
  ASSERT_TRUE(V);
  std::unique_ptr<int> P = std::move(*V);
  EXPECT_EQ(*P, 5);
}

TEST(ExpectedTest, CopyAndAssign) {
  Expected<std::string> A(std::string("hello"));
  Expected<std::string> B = A;
  EXPECT_EQ(*B, "hello");
  B = Expected<std::string>(Error::make(ErrorCode::EC_Parse, "x"));
  EXPECT_FALSE(B);
}

TEST(ExpectedTest, CantFailUnwraps) {
  EXPECT_EQ(cantFail(Expected<int>(9)), 9);
}

// --- StringUtil ------------------------------------------------------------

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  auto Parts = splitString("a,,b", ',');
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[1], "");
  EXPECT_EQ(Parts[2], "b");
}

TEST(StringUtilTest, SplitSingle) {
  auto Parts = splitString("abc", ',');
  ASSERT_EQ(Parts.size(), 1u);
  EXPECT_EQ(Parts[0], "abc");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(trim("  x y\t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtilTest, PrefixSuffix) {
  EXPECT_TRUE(startsWith("foobar", "foo"));
  EXPECT_FALSE(startsWith("fo", "foo"));
  EXPECT_TRUE(endsWith("patch.so", ".so"));
  EXPECT_FALSE(endsWith("so", ".so"));
}

TEST(StringUtilTest, FormatString) {
  EXPECT_EQ(formatString("%s=%d", "x", 7), "x=7");
  // Long output exercises the two-pass vsnprintf sizing.
  std::string Long(500, 'a');
  EXPECT_EQ(formatString("%s", Long.c_str()).size(), 500u);
}

TEST(StringUtilTest, ParseUIntAcceptsDigits) {
  uint64_t V = 0;
  EXPECT_TRUE(parseUInt("0", V));
  EXPECT_EQ(V, 0u);
  EXPECT_TRUE(parseUInt("123456789", V));
  EXPECT_EQ(V, 123456789u);
}

TEST(StringUtilTest, ParseUIntRejectsJunk) {
  uint64_t V = 0;
  EXPECT_FALSE(parseUInt("", V));
  EXPECT_FALSE(parseUInt("-3", V));
  EXPECT_FALSE(parseUInt("12x", V));
  EXPECT_FALSE(parseUInt("99999999999999999999999", V));
}

TEST(StringUtilTest, EscapeRoundTrip) {
  std::string Raw = "a\"b\\c\nd\te";
  std::string Escaped = escapeString(Raw);
  EXPECT_EQ(Escaped.find('\n'), std::string::npos);
  std::string Back;
  ASSERT_TRUE(unescapeString(Escaped, Back));
  EXPECT_EQ(Back, Raw);
}

TEST(StringUtilTest, UnescapeRejectsBadEscape) {
  std::string Out;
  EXPECT_FALSE(unescapeString("a\\q", Out));
  EXPECT_FALSE(unescapeString("a\\", Out));
}

// --- Hashing -----------------------------------------------------------

TEST(HashingTest, Deterministic) {
  EXPECT_EQ(fingerprintString("hello"), fingerprintString("hello"));
  EXPECT_NE(fingerprintString("hello"), fingerprintString("world"));
}

TEST(HashingTest, LengthMixedIn) {
  Fingerprint A, B;
  A.addString("ab");
  A.addString("c");
  B.addString("a");
  B.addString("bc");
  EXPECT_NE(A.value(), B.value());
}

TEST(HashingTest, HexIs16Chars) {
  EXPECT_EQ(Fingerprint().hex().size(), 16u);
}

// --- Timer / RunningStat ----------------------------------------------

TEST(TimerTest, MonotoneElapsed) {
  Timer T;
  uint64_t A = T.elapsedNs();
  uint64_t B = T.elapsedNs();
  EXPECT_GE(B, A);
}

TEST(RunningStatTest, Moments) {
  RunningStat S;
  for (double X : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    S.addSample(X);
  EXPECT_EQ(S.count(), 8u);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_DOUBLE_EQ(S.min(), 2.0);
  EXPECT_DOUBLE_EQ(S.max(), 9.0);
  EXPECT_NEAR(S.stddev(), 2.138, 0.01);
}

TEST(RunningStatTest, Percentile) {
  RunningStat S;
  for (int I = 1; I <= 100; ++I)
    S.addSample(I);
  EXPECT_NEAR(S.percentile(50), 50.5, 0.01);
  EXPECT_DOUBLE_EQ(S.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(S.percentile(100), 100.0);
}

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat S;
  EXPECT_EQ(S.mean(), 0.0);
  EXPECT_EQ(S.stddev(), 0.0);
  EXPECT_EQ(S.percentile(50), 0.0);
}

// --- MemoryBuffer ---------------------------------------------------------

TEST(MemoryBufferTest, WriteReadRoundTrip) {
  std::string Path = ::testing::TempDir() + "dsu_membuf_test.bin";
  std::string Data = "binary\0data\nwith newline";
  Data.push_back('\0');
  ASSERT_FALSE(writeFile(Path, Data));
  Expected<std::string> Back = readFile(Path);
  ASSERT_TRUE(Back);
  EXPECT_EQ(*Back, Data);
  Expected<uint64_t> Size = fileSize(Path);
  ASSERT_TRUE(Size);
  EXPECT_EQ(*Size, Data.size());
  EXPECT_TRUE(fileExists(Path));
  std::remove(Path.c_str());
}

TEST(MemoryBufferTest, MissingFileErrors) {
  Expected<std::string> R = readFile("/nonexistent/dsu/file");
  ASSERT_FALSE(R);
  EXPECT_EQ(R.error().code(), ErrorCode::EC_IO);
  EXPECT_FALSE(fileExists("/nonexistent/dsu/file"));
}

// --- SExpr -----------------------------------------------------------------

TEST(SExprTest, ParseScalars) {
  Expected<SExpr> S = parseSExpr("(name \"quoted\" 42 -7)");
  ASSERT_TRUE(S);
  ASSERT_TRUE(S->isList());
  ASSERT_EQ(S->size(), 4u);
  EXPECT_EQ((*S)[0].text(), "name");
  EXPECT_EQ((*S)[1].text(), "quoted");
  EXPECT_EQ((*S)[2].intValue(), 42);
  EXPECT_EQ((*S)[3].intValue(), -7);
}

TEST(SExprTest, NestedAndComments) {
  Expected<SExpr> S = parseSExpr(R"((a ; comment
      (b (c 1)) "s;not-comment"))");
  ASSERT_TRUE(S);
  EXPECT_TRUE(S->isForm("a"));
  EXPECT_EQ((*S)[1][1][1].intValue(), 1);
  EXPECT_EQ((*S)[2].text(), "s;not-comment");
}

TEST(SExprTest, FindFormAndProperty) {
  Expected<SExpr> S =
      parseSExpr("(top (id \"x\") (kv 1) (kv 2) (empty))");
  ASSERT_TRUE(S);
  ASSERT_NE(S->findForm("kv"), nullptr);
  EXPECT_EQ(S->findForms("kv").size(), 2u);
  ASSERT_NE(S->property("id"), nullptr);
  EXPECT_EQ(S->property("id")->text(), "x");
  EXPECT_EQ(S->property("empty"), nullptr);
  EXPECT_EQ(S->property("absent"), nullptr);
}

TEST(SExprTest, PrintParsesBack) {
  SExpr Root = SExpr::makeList(
      {SExpr::makeSymbol("patch"),
       SExpr::makeList({SExpr::makeSymbol("id"),
                        SExpr::makeString("has \"quotes\"\nand\tctl")}),
       SExpr::makeInt(-99)});
  for (bool Pretty : {false, true}) {
    Expected<SExpr> Back = parseSExpr(Root.print(Pretty));
    ASSERT_TRUE(Back);
    EXPECT_EQ(Back->print(false), Root.print(false));
  }
}

TEST(SExprTest, Errors) {
  EXPECT_FALSE(parseSExpr("(unterminated"));
  EXPECT_FALSE(parseSExpr(")"));
  EXPECT_FALSE(parseSExpr("(a) trailing"));
  EXPECT_FALSE(parseSExpr("\"unterminated string"));
  EXPECT_FALSE(parseSExpr(""));
}

TEST(SExprTest, ParseMany) {
  Expected<std::vector<SExpr>> Many = parseSExprs("(a) (b 1)\n; c\n(d)");
  ASSERT_TRUE(Many);
  EXPECT_EQ(Many->size(), 3u);
}

TEST(SExprTest, NegativeLooksLikeSymbolWhenNotNumeric) {
  Expected<SExpr> S = parseSExpr("(-abc -12x)");
  ASSERT_TRUE(S);
  EXPECT_TRUE((*S)[0].isSymbol());
  EXPECT_TRUE((*S)[1].isSymbol());
}
