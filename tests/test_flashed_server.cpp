//===- tests/test_flashed_server.cpp - Live-server tests ------*- C++ -*-===//
///
/// FlashEd over real sockets: the event loop serves loopback clients and
/// applies dynamic patches between requests — the paper's headline
/// scenario (updating a running web server with zero downtime).

#include "flashed/App.h"
#include "flashed/Client.h"
#include "flashed/Patches.h"
#include "flashed/Server.h"
#include "runtime/UpdateController.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace dsu;
using namespace dsu::flashed;

namespace {

class ServerTest : public ::testing::Test {
protected:
  void SetUp() override {
    DocStore Docs;
    Docs.put("/index.html", "<html>home</html>");
    Docs.put("/doc.html", "<html>doc</html>");
    Docs.fillSynthetic(4, 1024);
    ASSERT_FALSE(App.init(std::move(Docs)));

    Srv = std::make_unique<Server>(
        [this](const std::string &Raw) { return App.handle(Raw); });
    // The idle hook is FlashEd's update point.
    Srv->setIdleHook([this] { RT.updatePoint(); });
    ASSERT_FALSE(Srv->listenOn(0));

    Loop = std::thread([this] {
      Error E = Srv->runUntil([this] { return Stop.load(); }, 5);
      EXPECT_FALSE(E) << E.str();
    });
  }

  void TearDown() override {
    Stop.store(true);
    if (Loop.joinable())
      Loop.join();
  }

  Runtime RT;
  FlashedApp App{RT};
  std::unique_ptr<Server> Srv;
  std::thread Loop;
  std::atomic<bool> Stop{false};
};

TEST_F(ServerTest, ServesOverLoopback) {
  Expected<FetchResult> R = httpGet(Srv->port(), "/doc.html");
  ASSERT_TRUE(R) << R.takeError().str();
  EXPECT_EQ(R->Status, 200);
  EXPECT_EQ(R->Body, "<html>doc</html>");
  EXPECT_NE(R->Headers.find("Content-Type: text/html"), std::string::npos);
}

TEST_F(ServerTest, SequentialRequests) {
  for (int I = 0; I != 32; ++I) {
    Expected<FetchResult> R = httpGet(Srv->port(), "/doc0.html");
    ASSERT_TRUE(R) << R.takeError().str();
    EXPECT_EQ(R->Status, 200);
    EXPECT_EQ(R->Body.size(), 1024u);
  }
  EXPECT_GE(Srv->requestsServed(), 32u);
}

TEST_F(ServerTest, NotFoundAndErrors) {
  Expected<FetchResult> R = httpGet(Srv->port(), "/missing.html");
  ASSERT_TRUE(R);
  EXPECT_EQ(R->Status, 404);
}

TEST_F(ServerTest, LoadGenerator) {
  Expected<LoadStats> S =
      runLoad(Srv->port(), {"/doc0.html", "/doc1.html"}, 64);
  ASSERT_TRUE(S) << S.takeError().str();
  EXPECT_EQ(S->Requests, 64u);
  EXPECT_EQ(S->Failures, 0u);
  EXPECT_GT(S->requestsPerSecond(), 0.0);
  EXPECT_GT(S->BytesReceived, 64u * 1024u);
}

TEST_F(ServerTest, LiveUpdateBetweenRequests) {
  // The seeded v1 bug, observed over the wire.
  Expected<FetchResult> Before = httpGet(Srv->port(), "/doc.html?x=1");
  ASSERT_TRUE(Before);
  EXPECT_EQ(Before->Status, 404);

  // Queue P1 from this (client) thread; the server's idle hook applies
  // it at the next update point.
  Expected<Patch> P1 = makePatchP1(App);
  ASSERT_TRUE(P1) << P1.takeError().str();
  RT.requestUpdate(std::move(*P1));

  // The update point runs within one poll cycle.
  for (int Spin = 0; Spin != 100 && RT.updatesApplied() == 0; ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_EQ(RT.updatesApplied(), 1u);

  Expected<FetchResult> After = httpGet(Srv->port(), "/doc.html?x=1");
  ASSERT_TRUE(After);
  EXPECT_EQ(After->Status, 200);
  EXPECT_EQ(After->Body, "<html>doc</html>");
}

TEST_F(ServerTest, FullEvolutionUnderTraffic) {
  // Interleave the whole P1..P5 series with live requests.
  Expected<std::vector<Patch>> Series = makePatchSeries(App);
  ASSERT_TRUE(Series) << Series.takeError().str();

  unsigned Expected200 = 0, Got200 = 0;
  for (Patch &P : *Series) {
    RT.requestUpdate(std::move(P));
    unsigned Want = RT.updatesApplied() + 1;
    for (int Spin = 0; Spin != 200 && RT.updatesApplied() < Want; ++Spin)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ASSERT_EQ(RT.updatesApplied(), Want);

    for (int I = 0; I != 4; ++I) {
      ++Expected200;
      Expected<FetchResult> R = httpGet(Srv->port(), "/doc0.html");
      ASSERT_TRUE(R);
      if (R->Status == 200 && R->Body.size() == 1024)
        ++Got200;
    }
  }
  EXPECT_EQ(Got200, Expected200);
  EXPECT_EQ(RT.updatesApplied(), 5u);

  // Post-evolution: hit counting and logging observable over the wire.
  auto Count = cantFail(bindUpdateable<int64_t()>(
      RT.updateables(), RT.types(), "flashed.log_count"));
  EXPECT_GT(Count(), 0);
}

TEST(ServerLimitsTest, OverlongIncompleteRequestDisconnected) {
  Runtime RT;
  FlashedApp App(RT);
  DocStore Docs;
  Docs.put("/x.html", "x");
  ASSERT_FALSE(App.init(std::move(Docs)));
  Server Srv([&App](const std::string &Raw) { return App.handle(Raw); });
  // The cap must be configured before the loop thread starts: the field
  // is read by the event loop without synchronization.
  Srv.setMaxRequestBytes(4096);
  ASSERT_FALSE(Srv.listenOn(0));
  std::atomic<bool> Stop{false};
  std::thread Loop([&] {
    Error E = Srv.runUntil([&] { return Stop.load(); }, 5);
    EXPECT_FALSE(E) << E.str();
  });

  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Srv.port());
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr)),
            0);

  // Header bytes with no terminating blank line, well past the cap.  A
  // client that streams bytes without ever completing a request must be
  // cut off.
  std::string Chunk(1024, 'A');
  bool Rejected = false;
  for (int I = 0; I != 64 && !Rejected; ++I) {
    ssize_t N = ::send(Fd, Chunk.data(), Chunk.size(), MSG_NOSIGNAL);
    if (N < 0)
      Rejected = true; // server already reset the connection
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (!Rejected) {
    // The close must surface as EOF or a reset on our side; a receive
    // timeout (EAGAIN) means the cap was never enforced and the test
    // must fail.
    timeval Tv{2, 0};
    ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
    char Buf[64];
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    Rejected = N == 0 || (N < 0 && errno != EAGAIN && errno != EWOULDBLOCK);
  }
  ::close(Fd);
  EXPECT_TRUE(Rejected);

  // Well-behaved clients are unaffected.
  Expected<FetchResult> R = httpGet(Srv.port(), "/x.html");
  ASSERT_TRUE(R) << R.takeError().str();
  EXPECT_EQ(R->Status, 200);

  Stop.store(true);
  Loop.join();
}

// --- Persistent-connection (fast path) tests ----------------------------

/// Like ServerTest, but serving through the writer-style fast path with
/// keep-alive semantics.
class FastServerTest : public ::testing::Test {
protected:
  void SetUp() override {
    DocStore Docs;
    Docs.put("/index.html", "<html>home</html>");
    Docs.put("/doc.html", "<html>doc</html>");
    Docs.fillSynthetic(4, 1024);
    ASSERT_FALSE(App.init(std::move(Docs)));

    Srv = std::make_unique<Server>(
        [this](const RequestHead &Head, std::string_view Raw,
               std::string &Out, SharedBody &Body) {
          App.handleInto(Head, Raw, Out, Body);
        });
    // The idle hook is FlashEd's update point; it runs between requests
    // of a persistent connection.
    Srv->setIdleHook([this] { RT.updatePoint(); });
    ASSERT_FALSE(Srv->listenOn(0));

    Loop = std::thread([this] {
      Error E = Srv->runUntil([this] { return Stop.load(); }, 5);
      EXPECT_FALSE(E) << E.str();
    });
  }

  void TearDown() override {
    Stop.store(true);
    if (Loop.joinable())
      Loop.join();
  }

  Runtime RT;
  FlashedApp App{RT};
  std::unique_ptr<Server> Srv;
  std::thread Loop;
  std::atomic<bool> Stop{false};
};

TEST_F(FastServerTest, KeepAliveSequenceOnOneConnection) {
  KeepAliveClient C;
  ASSERT_FALSE(C.connectTo(Srv->port()));
  for (int I = 0; I != 32; ++I) {
    Expected<FetchResult> R = C.get("/doc0.html");
    ASSERT_TRUE(R) << R.takeError().str();
    EXPECT_EQ(R->Status, 200);
    EXPECT_EQ(R->Body.size(), 1024u);
    EXPECT_NE(R->Headers.find("Connection: keep-alive"),
              std::string::npos);
  }
  EXPECT_GE(Srv->requestsServed(), 32u);
  // All 32 requests rode one TCP connection.
  EXPECT_EQ(Srv->connectionsAccepted(), 1u);
}

TEST_F(FastServerTest, PipelinedRequestsInOneRead) {
  KeepAliveClient C;
  ASSERT_FALSE(C.connectTo(Srv->port()));
  Expected<std::vector<FetchResult>> Rs =
      C.pipeline({"/doc0.html", "/doc.html", "/index.html", "/doc1.html"});
  ASSERT_TRUE(Rs) << Rs.takeError().str();
  ASSERT_EQ(Rs->size(), 4u);
  // Responses come back in request order.
  EXPECT_EQ((*Rs)[0].Body.size(), 1024u);
  EXPECT_EQ((*Rs)[1].Body, "<html>doc</html>");
  EXPECT_EQ((*Rs)[2].Body, "<html>home</html>");
  EXPECT_EQ((*Rs)[3].Body.size(), 1024u);
  EXPECT_EQ(Srv->connectionsAccepted(), 1u);
}

TEST_F(FastServerTest, PipelinedBurstThenHalfCloseStillServed) {
  // A client may pipeline requests and immediately shut down its write
  // side; every buffered request must still be answered before the
  // server closes.
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Srv->port());
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr)),
            0);
  std::string Burst;
  for (int I = 0; I != 3; ++I)
    Burst += "GET /doc.html HTTP/1.1\r\nHost: h\r\n\r\n";
  ASSERT_EQ(::send(Fd, Burst.data(), Burst.size(), 0),
            static_cast<ssize_t>(Burst.size()));
  ASSERT_EQ(::shutdown(Fd, SHUT_WR), 0);

  std::string Raw;
  char Buf[4096];
  while (true) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N <= 0)
      break;
    Raw.append(Buf, static_cast<size_t>(N));
  }
  ::close(Fd);
  size_t Hits = 0;
  for (size_t At = Raw.find("<html>doc</html>"); At != std::string::npos;
       At = Raw.find("<html>doc</html>", At + 1))
    ++Hits;
  EXPECT_EQ(Hits, 3u);
}

TEST_F(FastServerTest, ConnectionCloseHonored) {
  // A raw HTTP/1.1 exchange with "Connection: close": the server must
  // answer, echo the close, and actually close the socket (EOF).
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Srv->port());
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr)),
            0);
  std::string Req = "GET /doc.html HTTP/1.1\r\nHost: h\r\n"
                    "Connection: close\r\n\r\n";
  ASSERT_EQ(::send(Fd, Req.data(), Req.size(), 0),
            static_cast<ssize_t>(Req.size()));

  std::string Raw;
  char Buf[4096];
  while (true) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N <= 0)
      break; // EOF: the server closed its side
    Raw.append(Buf, static_cast<size_t>(N));
  }
  ::close(Fd);
  EXPECT_NE(Raw.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(Raw.find("Connection: close"), std::string::npos);
  EXPECT_NE(Raw.find("<html>doc</html>"), std::string::npos);
}

TEST_F(FastServerTest, PartialWritesUnderTinyReceiveBuffer) {
  // An 8 MiB body against a deliberately tiny client receive window
  // forces the server through its EAGAIN/EPOLLOUT partial-write path
  // (writev of the shared body tail across many rounds).
  App.docs().put("/big.bin", syntheticBody(8u << 20, 42));

  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  int Tiny = 4096;
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVBUF, &Tiny, sizeof(Tiny));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Srv->port());
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr)),
            0);
  std::string Req = "GET /big.bin HTTP/1.1\r\nHost: h\r\n\r\n";
  ASSERT_EQ(::send(Fd, Req.data(), Req.size(), 0),
            static_cast<ssize_t>(Req.size()));

  // Read the head, then drain exactly Content-Length body bytes.
  std::string Raw;
  char Buf[8192];
  size_t HeadEnd = std::string::npos;
  while ((HeadEnd = Raw.find("\r\n\r\n")) == std::string::npos) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    ASSERT_GT(N, 0);
    Raw.append(Buf, static_cast<size_t>(N));
  }
  ASSERT_NE(Raw.find("HTTP/1.1 200 OK"), std::string::npos);
  size_t Want = (8u << 20) + HeadEnd + 4;
  while (Raw.size() < Want) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    ASSERT_GT(N, 0);
    Raw.append(Buf, static_cast<size_t>(N));
  }
  EXPECT_EQ(Raw.size(), Want);
  EXPECT_EQ(Raw.substr(HeadEnd + 4), syntheticBody(8u << 20, 42));

  // The connection survived the backpressure and still serves.
  std::string Req2 = "GET /doc.html HTTP/1.1\r\nHost: h\r\n"
                     "Connection: close\r\n\r\n";
  ASSERT_EQ(::send(Fd, Req2.data(), Req2.size(), 0),
            static_cast<ssize_t>(Req2.size()));
  std::string Raw2;
  while (true) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N <= 0)
      break;
    Raw2.append(Buf, static_cast<size_t>(N));
  }
  ::close(Fd);
  EXPECT_NE(Raw2.find("<html>doc</html>"), std::string::npos);
}

TEST_F(FastServerTest, UpdateAppliesBetweenKeepAliveRequests) {
  // The paper's update point fires between two requests of the SAME
  // persistent connection: v1 bug before, patched behaviour after,
  // zero downtime and zero reconnects.
  KeepAliveClient C;
  ASSERT_FALSE(C.connectTo(Srv->port()));

  Expected<FetchResult> Before = C.get("/doc.html?x=1");
  ASSERT_TRUE(Before) << Before.takeError().str();
  EXPECT_EQ(Before->Status, 404); // the seeded v1 query-string bug

  Expected<Patch> P1 = makePatchP1(App);
  ASSERT_TRUE(P1) << P1.takeError().str();
  RT.requestUpdate(std::move(*P1));
  for (int Spin = 0; Spin != 100 && RT.updatesApplied() == 0; ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_EQ(RT.updatesApplied(), 1u);

  Expected<FetchResult> After = C.get("/doc.html?x=1");
  ASSERT_TRUE(After) << After.takeError().str();
  EXPECT_EQ(After->Status, 200);
  EXPECT_EQ(After->Body, "<html>doc</html>");
  // Both exchanges used one connection: the update really happened
  // mid-connection.
  EXPECT_EQ(Srv->connectionsAccepted(), 1u);
}

// --- The /admin control plane over the wire ------------------------------

/// FastServerTest plus the admin surface: POSTed patch artifacts are
/// staged off-thread and committed by the idle hook.
class AdminServerTest : public FastServerTest {
protected:
  void SetUp() override {
    // Enable the control plane before the event loop starts: the serve
    // thread reads the admin pointer on every request.
    App.enableAdmin(RT.controller());
    FastServerTest::SetUp();
  }
};

TEST_F(AdminServerTest, PatchPostedMidTrafficAppliesOnSameConnection) {
  // The acceptance scenario end to end: one persistent connection
  // observes the v1 bug, ships the fix through POST /admin/patches, and
  // sees the patched behaviour — staging off-thread, commit at the idle
  // hook, zero reconnects.
  KeepAliveClient C;
  ASSERT_FALSE(C.connectTo(Srv->port()));

  Expected<FetchResult> Before = C.get("/doc.html?x=1");
  ASSERT_TRUE(Before) << Before.takeError().str();
  EXPECT_EQ(Before->Status, 404); // the seeded v1 query-string bug

  Expected<FetchResult> Post =
      C.post("/admin/patches", vtalParseFixPatchText(),
             "application/x-dsu-patch");
  ASSERT_TRUE(Post) << Post.takeError().str();
  EXPECT_EQ(Post->Status, 202);
  EXPECT_NE(Post->Body.find("\"tx\""), std::string::npos);

  // The idle hook commits within a few poll cycles.
  for (int Spin = 0; Spin != 500 && RT.updatesApplied() == 0; ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_EQ(RT.updatesApplied(), 1u);

  Expected<FetchResult> After = C.get("/doc.html?x=1");
  ASSERT_TRUE(After) << After.takeError().str();
  EXPECT_EQ(After->Status, 200);
  EXPECT_EQ(After->Body, "<html>doc</html>");
  // Every exchange — including the patch upload — rode one connection.
  EXPECT_EQ(Srv->connectionsAccepted(), 1u);

  // The update log reports the transaction with its stage/commit split.
  Expected<FetchResult> LogR = C.get("/admin/updates");
  ASSERT_TRUE(LogR) << LogR.takeError().str();
  EXPECT_EQ(LogR->Status, 200);
  EXPECT_NE(LogR->Body.find("\"phase\": \"committed\""),
            std::string::npos);
  EXPECT_NE(LogR->Body.find("P1-parse-query-fix-vtal"), std::string::npos);
  EXPECT_NE(LogR->Body.find("\"stage_ms\""), std::string::npos);
  EXPECT_NE(LogR->Body.find("\"commit_ms\""), std::string::npos);
}

TEST_F(AdminServerTest, MalformedArtifactSurfacesInUpdateLog) {
  KeepAliveClient C;
  ASSERT_FALSE(C.connectTo(Srv->port()));
  Expected<FetchResult> Post =
      C.post("/admin/patches", "(not a patch", "text/plain");
  ASSERT_TRUE(Post) << Post.takeError().str();
  EXPECT_EQ(Post->Status, 202); // accepted for staging...
  for (int Spin = 0; Spin != 500; ++Spin) {
    Expected<FetchResult> LogR = C.get("/admin/updates");
    ASSERT_TRUE(LogR);
    if (LogR->Body.find("stage-failed") != std::string::npos) {
      EXPECT_NE(LogR->Body.find("\"failure\""), std::string::npos);
      return; // ...and rejected by the staging worker, with a reason
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  FAIL() << "stage failure never surfaced in /admin/updates";
}

TEST_F(AdminServerTest, StatusAndRollbackEndpoints) {
  KeepAliveClient C;
  ASSERT_FALSE(C.connectTo(Srv->port()));

  Expected<FetchResult> S = C.get("/admin/status");
  ASSERT_TRUE(S) << S.takeError().str();
  EXPECT_EQ(S->Status, 200);
  EXPECT_NE(S->Body.find("\"updates_applied\": 0"), std::string::npos);

  // Rolling back the initial version is a conflict (nothing prior)...
  Expected<FetchResult> R1 =
      C.post("/admin/rollback?name=flashed.mime_type", "");
  ASSERT_TRUE(R1);
  EXPECT_EQ(R1->Status, 409);
  // ...an unknown updateable is a 404...
  Expected<FetchResult> R2 = C.post("/admin/rollback?name=ghost", "");
  ASSERT_TRUE(R2);
  EXPECT_EQ(R2->Status, 404);

  // ...and after an update, rollback over the wire restores v1.
  Expected<Patch> P1 = makePatchP1(App);
  ASSERT_TRUE(P1);
  RT.requestUpdate(std::move(*P1));
  for (int Spin = 0; Spin != 500 && RT.updatesApplied() == 0; ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_EQ(RT.updatesApplied(), 1u);
  ASSERT_EQ(C.get("/doc.html?x=1")->Status, 200);
  Expected<FetchResult> R3 =
      C.post("/admin/rollback?name=flashed.parse_target", "");
  ASSERT_TRUE(R3);
  EXPECT_EQ(R3->Status, 200);
  EXPECT_EQ(C.get("/doc.html?x=1")->Status, 404); // v1 bug is back

  // Unknown admin routes 404 without touching the updateable pipeline.
  Expected<FetchResult> R4 = C.get("/admin/nope");
  ASSERT_TRUE(R4);
  EXPECT_EQ(R4->Status, 404);
}

TEST(AdminStatusMappingTest, BusyIsRetryable) {
  // The EC_Busy -> 503 mapping the rollback endpoint relies on: busy is
  // retryable, link failures are 404, other rejections conflict.
  EXPECT_EQ(adminStatusForError(Error::success()), 200);
  EXPECT_EQ(adminStatusForError(
                Error::make(ErrorCode::EC_Busy, "active frames")),
            503);
  EXPECT_EQ(adminStatusForError(Error::make(ErrorCode::EC_Link, "none")),
            404);
  EXPECT_EQ(
      adminStatusForError(Error::make(ErrorCode::EC_Invalid, "initial")),
      409);
}

TEST(FastServerLimitsTest, BufferCapEnforcedOnPersistentConnection) {
  Runtime RT;
  FlashedApp App(RT);
  DocStore Docs;
  Docs.put("/x.html", "x");
  ASSERT_FALSE(App.init(std::move(Docs)));
  Server Srv([&App](const RequestHead &Head, std::string_view Raw,
                    std::string &Out, SharedBody &Body) {
    App.handleInto(Head, Raw, Out, Body);
  });
  Srv.setMaxRequestBytes(4096);
  ASSERT_FALSE(Srv.listenOn(0));
  std::atomic<bool> Stop{false};
  std::thread Loop([&] {
    Error E = Srv.runUntil([&] { return Stop.load(); }, 5);
    EXPECT_FALSE(E) << E.str();
  });

  // A well-formed keep-alive exchange first: the connection persists.
  KeepAliveClient C;
  ASSERT_FALSE(C.connectTo(Srv.port()));
  Expected<FetchResult> R = C.get("/x.html");
  ASSERT_TRUE(R) << R.takeError().str();
  EXPECT_EQ(R->Status, 200);

  // Then stream header bytes with no terminating blank line past the
  // cap on that same (persistent) connection: the server must cut it.
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Srv.port());
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr)),
            0);
  std::string Ok = "GET /x.html HTTP/1.1\r\nHost: h\r\n\r\n";
  ASSERT_EQ(::send(Fd, Ok.data(), Ok.size(), 0),
            static_cast<ssize_t>(Ok.size()));
  // Consume the response so only garbage remains buffered server-side.
  char Buf[4096];
  std::string Head;
  while (Head.find("\r\n\r\n") == std::string::npos) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    ASSERT_GT(N, 0);
    Head.append(Buf, static_cast<size_t>(N));
  }

  std::string Chunk(1024, 'A');
  bool Rejected = false;
  for (int I = 0; I != 64 && !Rejected; ++I) {
    ssize_t N = ::send(Fd, Chunk.data(), Chunk.size(), MSG_NOSIGNAL);
    if (N < 0)
      Rejected = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (!Rejected) {
    timeval Tv{2, 0};
    ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    Rejected = N == 0 || (N < 0 && errno != EAGAIN && errno != EWOULDBLOCK);
  }
  ::close(Fd);
  EXPECT_TRUE(Rejected);

  Stop.store(true);
  Loop.join();
}

TEST_F(FastServerTest, GracefulStopDrainsBackpressuredPipelinedRequests) {
  // Four pipelined requests for a large body against a tiny client
  // receive window: at stop() time the server is guaranteed to hold
  // both unsent output and buffered not-yet-served requests.  A
  // graceful stop must serve and flush all of it before closing —
  // the old shutdown() raced the loop and dropped them.
  App.docs().put("/big.bin", syntheticBody(1u << 20, 7));

  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  int Tiny = 4096;
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVBUF, &Tiny, sizeof(Tiny));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Srv->port());
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr)),
            0);
  std::string Burst;
  for (int I = 0; I != 4; ++I)
    Burst += "GET /big.bin HTTP/1.1\r\nHost: h\r\n\r\n";
  ASSERT_EQ(::send(Fd, Burst.data(), Burst.size(), 0),
            static_cast<ssize_t>(Burst.size()));

  // Wait until at least one response started flowing, then stop while
  // later pipelined requests are still queued behind backpressure.
  for (int Spin = 0; Spin != 1000 && Srv->requestsServed() == 0; ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_GT(Srv->requestsServed(), 0u);
  Srv->stop();

  // Every byte of all four responses arrives, then EOF.
  std::string Raw;
  char Buf[8192];
  while (true) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N <= 0)
      break;
    Raw.append(Buf, static_cast<size_t>(N));
  }
  ::close(Fd);
  size_t Hits = 0;
  for (size_t Pos = Raw.find("HTTP/1.1 200 OK"); Pos != std::string::npos;
       Pos = Raw.find("HTTP/1.1 200 OK", Pos + 1))
    ++Hits;
  EXPECT_EQ(Hits, 4u);
  EXPECT_EQ(Raw.size(), 4 * ((1u << 20) + Raw.find("\r\n\r\n") + 4));

  // The loop thread exits on its own once the drain completes.
  Loop.join();
  EXPECT_TRUE(Srv->drained());
}

TEST_F(FastServerTest, GracefulStopClosesIdleKeepAliveConnections) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Srv->port());
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr)),
            0);
  std::string Req = "GET /doc.html HTTP/1.1\r\nHost: h\r\n\r\n";
  ASSERT_EQ(::send(Fd, Req.data(), Req.size(), 0),
            static_cast<ssize_t>(Req.size()));
  std::string Raw;
  char Buf[4096];
  while (Raw.find("</html>") == std::string::npos) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    ASSERT_GT(N, 0);
    Raw.append(Buf, static_cast<size_t>(N));
  }

  // The connection is now an idle keep-alive conn; stop() must close
  // it instead of leaving the client hanging.
  Srv->stop();
  ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
  EXPECT_EQ(N, 0); // clean EOF, not a timeout or reset
  ::close(Fd);
  Loop.join();
  EXPECT_TRUE(Srv->drained());
}

TEST_F(FastServerTest, DrainDeadlineForceClosesStalledPeer) {
  // A client that requests a large body and then never reads it keeps
  // unsent output pending forever; the drain deadline must force-close
  // it so stop() cannot be wedged by one stalled peer.
  App.docs().put("/big.bin", syntheticBody(4u << 20, 9));
  Srv->setDrainTimeout(100);

  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  int Tiny = 4096;
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVBUF, &Tiny, sizeof(Tiny));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Srv->port());
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr)),
            0);
  std::string Req = "GET /big.bin HTTP/1.1\r\nHost: h\r\n\r\n";
  ASSERT_EQ(::send(Fd, Req.data(), Req.size(), 0),
            static_cast<ssize_t>(Req.size()));
  for (int Spin = 0; Spin != 1000 && Srv->requestsServed() == 0; ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  auto Begin = std::chrono::steady_clock::now();
  Srv->stop();
  Loop.join(); // must return: the stalled conn is cut at the deadline
  auto Ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - Begin)
                .count();
  EXPECT_TRUE(Srv->drained());
  EXPECT_LT(Ms, 3000);
  ::close(Fd);
}

TEST(ServerLifecycleTest, DoubleListenIsARealError) {
  Runtime RT;
  FlashedApp App(RT);
  DocStore Docs;
  Docs.put("/x.html", "x");
  ASSERT_FALSE(App.init(std::move(Docs)));
  Server Srv([&App](const std::string &Raw) { return App.handle(Raw); });
  ASSERT_FALSE(Srv.listenOn(0));
  uint16_t Port = Srv.port();
  // A second listenOn must fail loudly (not assert, not leak an fd) and
  // leave the original listener serving.
  Error E = Srv.listenOn(0);
  EXPECT_TRUE(static_cast<bool>(E));
  EXPECT_NE(E.str().find("already listening"), std::string::npos);
  EXPECT_EQ(Srv.port(), Port);
  Srv.shutdown();
}

TEST(ServerLifecycleTest, ShutdownAndRebind) {
  Runtime RT;
  FlashedApp App(RT);
  DocStore Docs;
  Docs.put("/x.html", "x");
  ASSERT_FALSE(App.init(std::move(Docs)));
  Server Srv([&App](const std::string &Raw) { return App.handle(Raw); });
  ASSERT_FALSE(Srv.listenOn(0));
  uint16_t Port = Srv.port();
  EXPECT_GT(Port, 0u);
  Srv.shutdown();
  // Listening again picks a fresh ephemeral port.
  ASSERT_FALSE(Srv.listenOn(0));
  EXPECT_GT(Srv.port(), 0u);
  Srv.shutdown();
}

} // namespace
