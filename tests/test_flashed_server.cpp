//===- tests/test_flashed_server.cpp - Live-server tests ------*- C++ -*-===//
///
/// FlashEd over real sockets: the event loop serves loopback clients and
/// applies dynamic patches between requests — the paper's headline
/// scenario (updating a running web server with zero downtime).

#include "flashed/App.h"
#include "flashed/Client.h"
#include "flashed/Patches.h"
#include "flashed/Server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace dsu;
using namespace dsu::flashed;

namespace {

class ServerTest : public ::testing::Test {
protected:
  void SetUp() override {
    DocStore Docs;
    Docs.put("/index.html", "<html>home</html>");
    Docs.put("/doc.html", "<html>doc</html>");
    Docs.fillSynthetic(4, 1024);
    ASSERT_FALSE(App.init(std::move(Docs)));

    Srv = std::make_unique<Server>(
        [this](const std::string &Raw) { return App.handle(Raw); });
    // The idle hook is FlashEd's update point.
    Srv->setIdleHook([this] { RT.updatePoint(); });
    ASSERT_FALSE(Srv->listenOn(0));

    Loop = std::thread([this] {
      Error E = Srv->runUntil([this] { return Stop.load(); }, 5);
      EXPECT_FALSE(E) << E.str();
    });
  }

  void TearDown() override {
    Stop.store(true);
    if (Loop.joinable())
      Loop.join();
  }

  Runtime RT;
  FlashedApp App{RT};
  std::unique_ptr<Server> Srv;
  std::thread Loop;
  std::atomic<bool> Stop{false};
};

TEST_F(ServerTest, ServesOverLoopback) {
  Expected<FetchResult> R = httpGet(Srv->port(), "/doc.html");
  ASSERT_TRUE(R) << R.takeError().str();
  EXPECT_EQ(R->Status, 200);
  EXPECT_EQ(R->Body, "<html>doc</html>");
  EXPECT_NE(R->Headers.find("Content-Type: text/html"), std::string::npos);
}

TEST_F(ServerTest, SequentialRequests) {
  for (int I = 0; I != 32; ++I) {
    Expected<FetchResult> R = httpGet(Srv->port(), "/doc0.html");
    ASSERT_TRUE(R) << R.takeError().str();
    EXPECT_EQ(R->Status, 200);
    EXPECT_EQ(R->Body.size(), 1024u);
  }
  EXPECT_GE(Srv->requestsServed(), 32u);
}

TEST_F(ServerTest, NotFoundAndErrors) {
  Expected<FetchResult> R = httpGet(Srv->port(), "/missing.html");
  ASSERT_TRUE(R);
  EXPECT_EQ(R->Status, 404);
}

TEST_F(ServerTest, LoadGenerator) {
  Expected<LoadStats> S =
      runLoad(Srv->port(), {"/doc0.html", "/doc1.html"}, 64);
  ASSERT_TRUE(S) << S.takeError().str();
  EXPECT_EQ(S->Requests, 64u);
  EXPECT_EQ(S->Failures, 0u);
  EXPECT_GT(S->requestsPerSecond(), 0.0);
  EXPECT_GT(S->BytesReceived, 64u * 1024u);
}

TEST_F(ServerTest, LiveUpdateBetweenRequests) {
  // The seeded v1 bug, observed over the wire.
  Expected<FetchResult> Before = httpGet(Srv->port(), "/doc.html?x=1");
  ASSERT_TRUE(Before);
  EXPECT_EQ(Before->Status, 404);

  // Queue P1 from this (client) thread; the server's idle hook applies
  // it at the next update point.
  Expected<Patch> P1 = makePatchP1(App);
  ASSERT_TRUE(P1) << P1.takeError().str();
  RT.requestUpdate(std::move(*P1));

  // The update point runs within one poll cycle.
  for (int Spin = 0; Spin != 100 && RT.updatesApplied() == 0; ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_EQ(RT.updatesApplied(), 1u);

  Expected<FetchResult> After = httpGet(Srv->port(), "/doc.html?x=1");
  ASSERT_TRUE(After);
  EXPECT_EQ(After->Status, 200);
  EXPECT_EQ(After->Body, "<html>doc</html>");
}

TEST_F(ServerTest, FullEvolutionUnderTraffic) {
  // Interleave the whole P1..P5 series with live requests.
  Expected<std::vector<Patch>> Series = makePatchSeries(App);
  ASSERT_TRUE(Series) << Series.takeError().str();

  unsigned Expected200 = 0, Got200 = 0;
  for (Patch &P : *Series) {
    RT.requestUpdate(std::move(P));
    unsigned Want = RT.updatesApplied() + 1;
    for (int Spin = 0; Spin != 200 && RT.updatesApplied() < Want; ++Spin)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ASSERT_EQ(RT.updatesApplied(), Want);

    for (int I = 0; I != 4; ++I) {
      ++Expected200;
      Expected<FetchResult> R = httpGet(Srv->port(), "/doc0.html");
      ASSERT_TRUE(R);
      if (R->Status == 200 && R->Body.size() == 1024)
        ++Got200;
    }
  }
  EXPECT_EQ(Got200, Expected200);
  EXPECT_EQ(RT.updatesApplied(), 5u);

  // Post-evolution: hit counting and logging observable over the wire.
  auto Count = cantFail(bindUpdateable<int64_t()>(
      RT.updateables(), RT.types(), "flashed.log_count"));
  EXPECT_GT(Count(), 0);
}

TEST(ServerLimitsTest, OverlongIncompleteRequestDisconnected) {
  Runtime RT;
  FlashedApp App(RT);
  DocStore Docs;
  Docs.put("/x.html", "x");
  ASSERT_FALSE(App.init(std::move(Docs)));
  Server Srv([&App](const std::string &Raw) { return App.handle(Raw); });
  // The cap must be configured before the loop thread starts: the field
  // is read by the event loop without synchronization.
  Srv.setMaxRequestBytes(4096);
  ASSERT_FALSE(Srv.listenOn(0));
  std::atomic<bool> Stop{false};
  std::thread Loop([&] {
    Error E = Srv.runUntil([&] { return Stop.load(); }, 5);
    EXPECT_FALSE(E) << E.str();
  });

  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Srv.port());
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr)),
            0);

  // Header bytes with no terminating blank line, well past the cap.  A
  // client that streams bytes without ever completing a request must be
  // cut off.
  std::string Chunk(1024, 'A');
  bool Rejected = false;
  for (int I = 0; I != 64 && !Rejected; ++I) {
    ssize_t N = ::send(Fd, Chunk.data(), Chunk.size(), MSG_NOSIGNAL);
    if (N < 0)
      Rejected = true; // server already reset the connection
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (!Rejected) {
    // The close must surface as EOF or a reset on our side; a receive
    // timeout (EAGAIN) means the cap was never enforced and the test
    // must fail.
    timeval Tv{2, 0};
    ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
    char Buf[64];
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    Rejected = N == 0 || (N < 0 && errno != EAGAIN && errno != EWOULDBLOCK);
  }
  ::close(Fd);
  EXPECT_TRUE(Rejected);

  // Well-behaved clients are unaffected.
  Expected<FetchResult> R = httpGet(Srv.port(), "/x.html");
  ASSERT_TRUE(R) << R.takeError().str();
  EXPECT_EQ(R->Status, 200);

  Stop.store(true);
  Loop.join();
}

TEST(ServerLifecycleTest, ShutdownAndRebind) {
  Runtime RT;
  FlashedApp App(RT);
  DocStore Docs;
  Docs.put("/x.html", "x");
  ASSERT_FALSE(App.init(std::move(Docs)));
  Server Srv([&App](const std::string &Raw) { return App.handle(Raw); });
  ASSERT_FALSE(Srv.listenOn(0));
  uint16_t Port = Srv.port();
  EXPECT_GT(Port, 0u);
  Srv.shutdown();
  // Listening again picks a fresh ephemeral port.
  ASSERT_FALSE(Srv.listenOn(0));
  EXPECT_GT(Srv.port(), 0u);
  Srv.shutdown();
}

} // namespace
