//===- tools/dsu-vtal.cpp - VTAL assembler/verifier CLI -------*- C++ -*-===//
///
/// \file
/// Offline tooling for VTAL patch code:
///
///   dsu-vtal verify <file.vtal>       assemble + verify, report verdict
///   dsu-vtal encode <file.vtal> <out> assemble + verify + emit bytecode
///   dsu-vtal dump <file.vtalbc>       decode bytecode + print assembly
///   dsu-vtal run <file.vtal> <fn> [int args...]   interpret a function
///
/// Mirrors the paper's workflow where patch code is checked before it
/// ever reaches a production process.
///
//===----------------------------------------------------------------------===//

#include "support/MemoryBuffer.h"
#include "vtal/Assembler.h"
#include "vtal/Bytecode.h"
#include "vtal/Interp.h"
#include "vtal/Verifier.h"
#ifndef DSU_VTAL_NO_NATIVE
#include "vtal/native/NativeImage.h"
#endif

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace dsu;
using namespace dsu::vtal;

namespace {

int usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s verify <file.vtal>\n"
               "       %s encode <file.vtal> <out.vtalbc>\n"
               "       %s dump <file.vtalbc>\n"
               "       %s run <file.vtal> <fn> [int args...]\n",
               Prog, Prog, Prog, Prog);
  return 2;
}

Module loadAsm(const char *Path) {
  Expected<std::string> Text = readFile(Path);
  if (!Text) {
    std::fprintf(stderr, "error: %s\n", Text.error().str().c_str());
    std::exit(1);
  }
  Expected<Module> M = assemble(*Text);
  if (!M) {
    std::fprintf(stderr, "error: %s\n", M.error().str().c_str());
    std::exit(1);
  }
  return std::move(*M);
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 3)
    return usage(argv[0]);
  const char *Cmd = argv[1];

  if (std::strcmp(Cmd, "verify") == 0) {
    Module M = loadAsm(argv[2]);
    VerifyStats Stats;
    if (Error E = verifyModule(M, &Stats)) {
      std::fprintf(stderr, "REJECTED: %s\n", E.str().c_str());
      return 1;
    }
    std::printf("verified: module '%s', %zu function(s), %zu "
                "instruction(s) checked\n",
                M.Name.c_str(), Stats.FunctionsChecked,
                Stats.InstructionsChecked);
    return 0;
  }

  if (std::strcmp(Cmd, "encode") == 0) {
    if (argc < 4)
      return usage(argv[0]);
    Module M = loadAsm(argv[2]);
    if (Error E = verifyModule(M)) {
      std::fprintf(stderr, "REJECTED: %s\n", E.str().c_str());
      return 1;
    }
    std::string Bytes = encodeModule(M);
    if (Error E = writeFile(argv[3], Bytes)) {
      std::fprintf(stderr, "error: %s\n", E.str().c_str());
      return 1;
    }
    std::printf("wrote %zu bytes (%zu stripped) to %s\n", Bytes.size(),
                strippedSize(M), argv[3]);
    return 0;
  }

  if (std::strcmp(Cmd, "dump") == 0) {
    Expected<std::string> Bytes = readFile(argv[2]);
    if (!Bytes) {
      std::fprintf(stderr, "error: %s\n", Bytes.error().str().c_str());
      return 1;
    }
    Expected<Module> M = decodeModule(*Bytes);
    if (!M) {
      std::fprintf(stderr, "error: %s\n", M.error().str().c_str());
      return 1;
    }
    std::printf("%s", M->str().c_str());
    return 0;
  }

  if (std::strcmp(Cmd, "run") == 0) {
    if (argc < 4)
      return usage(argv[0]);
    Module M = loadAsm(argv[2]);
    if (Error E = verifyModule(M)) {
      std::fprintf(stderr, "REJECTED: %s\n", E.str().c_str());
      return 1;
    }
    Interpreter I(M);
#ifndef DSU_VTAL_NO_NATIVE
    // Same tier policy as the runtime's patch loader: DSU_VTAL_NATIVE
    // gates the native tier, so CLI runs report the fuel/trap behaviour
    // an updated process would see under the same environment.
    {
      using vtal::native::NativeImage;
      using vtal::native::TierPolicy;
      TierPolicy Policy = TierPolicy::fromEnv();
      if (Policy.ModeV != TierPolicy::Mode::Off) {
        const vtal::ResolvedModule &RM = I.resolved();
        std::vector<bool> Mask(RM.Functions.size(), false);
        for (size_t F = 0; F != RM.Functions.size(); ++F)
          Mask[F] = Policy.ModeV == TierPolicy::Mode::All ||
                    RM.Functions[F].Code.size() <= Policy.SmallFnInsts;
        Expected<std::shared_ptr<const NativeImage>> Img =
            NativeImage::compile(RM, &Mask);
        if (Img && (*Img)->compiledCount() != 0)
          I.setNativeImage(*Img);
      }
    }
#endif
    std::vector<Value> Args;
    for (int A = 4; A < argc; ++A)
      Args.push_back(Value::makeInt(std::atoll(argv[A])));
    Expected<Value> R = I.call(argv[3], Args);
    if (!R) {
      std::fprintf(stderr, "trap: %s\n", R.error().str().c_str());
      return 1;
    }
    std::printf("%s (fuel used: %llu)\n", R->str().c_str(),
                static_cast<unsigned long long>(I.lastFuelUsed()));
    return 0;
  }

  return usage(argv[0]);
}
