//===- tools/dsu-updatectl.cpp - Remote update control CLI ----*- C++ -*-===//
///
/// \file
/// Drives a running FlashEd server's /admin control plane, closing the
/// build -> ship -> hot-load loop end to end:
///
///   dsu-updatectl stage    <port> <patch-file>   POST the artifact; the
///                                                server stages it off-thread
///                                                and commits at its next
///                                                idle update point
///   dsu-updatectl log      <port>                GET the update log (JSON:
///                                                phase, stage/commit timings,
///                                                failure reasons); analyzed
///                                                updates get an analyzer
///                                                verdict summary on stderr
///   dsu-updatectl lint     <port> <tx-id>        GET /admin/lint?id=N — the
///                                                update-safety analyzer's
///                                                full finding list for one
///                                                transaction
///   dsu-updatectl status   <port> [--workers]    GET counters + queue depth;
///                                                --workers requires the
///                                                per-worker state array (a
///                                                reactor pool attached) and
///                                                fails when absent
///   dsu-updatectl metrics  <port>                GET /admin/metrics (the
///                                                text exposition: per-worker
///                                                counters, pause + epoch +
///                                                stage->commit histograms)
///   dsu-updatectl rollback <port> <updateable>   roll one function back;
///                                                a 503 means "busy, retry"
///   dsu-updatectl history  <port>                GET /admin/journal — the
///                                                durable update journal's
///                                                decoded record history
///                                                (boots, intents, seals,
///                                                replay + quarantine state);
///                                                404 when the server runs
///                                                without a journal
///   dsu-updatectl quarantine <port>              GET /admin/journal
///                                                ?quarantined=1 — just the
///                                                crash-loop quarantine table
///   dsu-updatectl rollout  <port> <patch-file>   drive the patch through a
///                                                metric-gated canary rollout
///                                                and wait for the verdict;
///                                                flags: --canary-workers N,
///                                                --window-ms N,
///                                                --max-error-delta F,
///                                                --max-latency-delta-us F,
///                                                --min-samples N,
///                                                --max-canary-traps N
///   dsu-updatectl trace    <port> <tx-id>        GET /admin/trace?id=N — the
///                                                flight recorder's span tree
///                                                for one update (staging,
///                                                per-function verify, queue
///                                                wait, commit parks/adoptions
///                                                per worker, rollout gates,
///                                                journal fsyncs);
///                                                --chrome dumps the whole
///                                                recorder as Chrome
///                                                trace-event JSON instead
///                                                (load in Perfetto)
///   dsu-updatectl profile  <port>                GET /admin/profile — the
///                                                VTAL hot-function ranking
///                                                (calls, self-fuel, traps,
///                                                sampled self-time); flags:
///                                                --top N (0 = all),
///                                                --reset (zero the window
///                                                after reporting)
///
/// Every command accepts --timeout-ms N (bounds each socket send/receive
/// so a wedged server cannot hang the operator) and retries 503 "busy"
/// answers with capped exponential backoff, honouring the server's
/// Retry-After hint.
///
/// Exit status: 0 on 2xx (for rollout: promoted), 1 on a rolled-back or
/// failed rollout (the deploy was rejected — the operator must know),
/// 2 on usage errors, 3 when the server cannot be reached at all, 4 when
/// the connection is lost (or times out) mid-command, and the HTTP
/// status class (4, 5) otherwise; `status --workers` against a poolless
/// server exits 1.
///
//===----------------------------------------------------------------------===//

#include "flashed/Client.h"
#include "support/MemoryBuffer.h"
#include "support/StringUtil.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace dsu;
using namespace dsu::flashed;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s stage <port> <patch-file>\n"
      "       %s log <port>\n"
      "       %s lint <port> <tx-id>\n"
      "       %s status <port> [--workers]\n"
      "       %s metrics <port>\n"
      "       %s history <port>\n"
      "       %s quarantine <port>\n"
      "       %s rollback <port> <updateable-name>\n"
      "       %s rollout <port> <patch-file> [--canary-workers N]\n"
      "           [--window-ms N] [--max-error-delta F]\n"
      "           [--max-latency-delta-us F] [--min-samples N]\n"
      "           [--max-canary-traps N]\n"
      "       %s trace <port> <tx-id> | trace <port> --chrome\n"
      "       %s profile <port> [--top N] [--reset]\n"
      "common flags: --timeout-ms N\n",
      Argv0, Argv0, Argv0, Argv0, Argv0, Argv0, Argv0, Argv0, Argv0, Argv0,
      Argv0);
  return 2;
}

/// Exit code for a request that failed at the transport layer: 3 when
/// the server was never reachable this command, 4 when the connection
/// died (or timed out) after the command was already under way — the
/// distinction between "server down" and "command outcome unknown".
int transportExit(const Error &E, bool MidCommand) {
  std::fprintf(stderr, "error: %s\n", E.str().c_str());
  return MidCommand || E.code() == ErrorCode::EC_Timeout ? 4 : 3;
}

int finish(Expected<FetchResult> R, bool MidCommand = false) {
  if (!R)
    return transportExit(R.error(), MidCommand);
  std::printf("%s\n", R->Body.c_str());
  if (R->Status >= 200 && R->Status < 300)
    return 0;
  std::fprintf(stderr, "HTTP %d\n", R->Status);
  return R->Status / 100;
}

/// Pulls `"Key": <number>` out of a flat JSON body (the control plane's
/// bodies are formatString-generated, so the quoting is exact).
bool jsonNumber(const std::string &Body, const char *Key, uint64_t &Out) {
  std::string Needle = std::string("\"") + Key + "\": ";
  size_t At = Body.find(Needle);
  if (At == std::string::npos)
    return false;
  return parseUInt(
      std::string_view(Body).substr(At + Needle.size(),
                                    Body.find_first_of(",}", At) -
                                        (At + Needle.size())),
      Out);
}

/// Pulls `"Key": "value"` out of a flat JSON body.
std::string jsonString(const std::string &Body, const char *Key) {
  std::string Needle = std::string("\"") + Key + "\": \"";
  size_t At = Body.find(Needle);
  if (At == std::string::npos)
    return "";
  size_t Start = At + Needle.size();
  size_t End = Body.find('"', Start);
  return End == std::string::npos ? "" : Body.substr(Start, End - Start);
}

struct RolloutFlags {
  std::string Query;
  uint64_t StageTimeoutMs = 10000;
  uint64_t WindowMs = 500;
};

/// Drives POST /admin/rollout + GET /admin/rollouts?id=N to the verdict.
int runRollout(KeepAliveClient &C, const std::string &Artifact,
               const RolloutFlags &F) {
  Expected<FetchResult> Posted = C.postWithRetry(
      "/admin/rollout" + F.Query, Artifact, "application/x-dsu-patch");
  if (!Posted)
    return transportExit(Posted.error(), /*MidCommand=*/true);
  if (Posted->Status != 202) {
    std::printf("%s\n", Posted->Body.c_str());
    std::fprintf(stderr, "HTTP %d\n", Posted->Status);
    return Posted->Status / 100;
  }
  uint64_t Id = 0;
  if (!jsonNumber(Posted->Body, "rollout", Id)) {
    std::fprintf(stderr, "error: no rollout id in: %s\n",
                 Posted->Body.c_str());
    return 4;
  }
  std::fprintf(stderr, "rollout %llu started; observing...\n",
               static_cast<unsigned long long>(Id));

  // Poll until the state machine resolves.  Budget: staging deadline +
  // observation window + generous scheduling margin.
  std::string Target =
      "/admin/rollouts?id=" + std::to_string(Id);
  uint64_t BudgetMs = F.StageTimeoutMs + F.WindowMs + 30000;
  for (uint64_t WaitedMs = 0;; WaitedMs += 50) {
    Expected<FetchResult> R = C.get(Target);
    if (!R)
      return transportExit(R.error(), /*MidCommand=*/true);
    if (R->Status != 200) {
      std::printf("%s\n", R->Body.c_str());
      std::fprintf(stderr, "HTTP %d\n", R->Status);
      return R->Status / 100;
    }
    std::string State = jsonString(R->Body, "state");
    if (State == "promoted" || State == "rolled-back" || State == "failed") {
      std::printf("%s\n", R->Body.c_str());
      std::string Reason = jsonString(R->Body, "reason");
      std::fprintf(stderr, "rollout %llu: %s%s%s\n",
                   static_cast<unsigned long long>(Id), State.c_str(),
                   Reason.empty() ? "" : " — ", Reason.c_str());
      return State == "promoted" ? 0 : 1;
    }
    if (WaitedMs >= BudgetMs) {
      std::printf("%s\n", R->Body.c_str());
      std::fprintf(stderr, "error: rollout %llu still '%s' after %llu ms\n",
                   static_cast<unsigned long long>(Id), State.c_str(),
                   static_cast<unsigned long long>(WaitedMs));
      return 4;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 3)
    return usage(argv[0]);
  const char *Cmd = argv[1];
  uint16_t Port = static_cast<uint16_t>(std::atoi(argv[2]));
  if (Port == 0) {
    std::fprintf(stderr, "error: bad port '%s'\n", argv[2]);
    return 2;
  }

  // Peel the common --timeout-ms flag (anywhere after the command) and
  // collect the rest as positional/command-specific arguments.
  uint64_t TimeoutMs = 0;
  std::vector<std::string> Args;
  for (int I = 3; I < argc; ++I) {
    if (std::strcmp(argv[I], "--timeout-ms") == 0 && I + 1 < argc) {
      TimeoutMs = std::strtoull(argv[++I], nullptr, 10);
      continue;
    }
    Args.push_back(argv[I]);
  }

  KeepAliveClient C;
  C.setTimeoutMs(TimeoutMs);
  if (Error E = C.connectTo(Port))
    return transportExit(E, /*MidCommand=*/false);

  if (std::strcmp(Cmd, "stage") == 0) {
    if (Args.empty())
      return usage(argv[0]);
    Expected<std::string> Artifact = readFile(Args[0].c_str());
    if (!Artifact) {
      std::fprintf(stderr, "error: %s\n", Artifact.error().str().c_str());
      return 2;
    }
    return finish(C.postWithRetry("/admin/patches", *Artifact,
                                  "application/x-dsu-patch"),
                  /*MidCommand=*/true);
  }
  if (std::strcmp(Cmd, "log") == 0) {
    Expected<FetchResult> R = C.get("/admin/updates");
    if (R && R->Status >= 200 && R->Status < 300) {
      // Sum the analyzer's flat verdict fields across the whole log so
      // one glance at stderr says whether any update carried findings.
      uint64_t Errors = 0, Warnings = 0;
      size_t Analyzed = 0;
      const std::string &B = R->Body;
      const char *EKey = "\"analysis_errors\": ";
      const char *WKey = "\"analysis_warnings\": ";
      for (size_t At = B.find(EKey); At != std::string::npos;
           At = B.find(EKey, At + 1)) {
        ++Analyzed;
        Errors += std::strtoull(B.c_str() + At + std::strlen(EKey),
                                nullptr, 10);
      }
      for (size_t At = B.find(WKey); At != std::string::npos;
           At = B.find(WKey, At + 1))
        Warnings += std::strtoull(B.c_str() + At + std::strlen(WKey),
                                  nullptr, 10);
      if (Analyzed)
        std::fprintf(stderr,
                     "analysis: %zu update(s) analyzed, %llu error / "
                     "%llu warning finding(s)\n",
                     Analyzed, static_cast<unsigned long long>(Errors),
                     static_cast<unsigned long long>(Warnings));
    }
    return finish(std::move(R), /*MidCommand=*/true);
  }
  if (std::strcmp(Cmd, "lint") == 0) {
    if (Args.empty())
      return usage(argv[0]);
    return finish(C.get("/admin/lint?id=" + Args[0]), /*MidCommand=*/true);
  }
  if (std::strcmp(Cmd, "status") == 0) {
    bool WantWorkers = !Args.empty() && Args[0] == "--workers";
    Expected<FetchResult> R = C.get("/admin/status");
    // --workers asserts the multi-core serving plane is attached: the
    // per-worker state array is how operators see parked/stuck workers
    // and per-worker epoch lag.
    bool MissingWorkers =
        WantWorkers && R &&
        R->Body.find("\"worker_state\"") == std::string::npos;
    int Code = finish(std::move(R), /*MidCommand=*/true);
    if (Code == 0 && MissingWorkers) {
      std::fprintf(stderr,
                   "error: no per-worker state (no reactor pool attached)\n");
      return 1;
    }
    return Code;
  }
  if (std::strcmp(Cmd, "metrics") == 0)
    return finish(C.get("/admin/metrics"), /*MidCommand=*/true);
  if (std::strcmp(Cmd, "trace") == 0) {
    if (Args.empty())
      return usage(argv[0]);
    if (Args[0] == "--chrome")
      return finish(C.get("/admin/trace?export=chrome"),
                    /*MidCommand=*/true);
    return finish(C.get("/admin/trace?id=" + Args[0]), /*MidCommand=*/true);
  }
  if (std::strcmp(Cmd, "profile") == 0) {
    std::string Query;
    bool Reset = false;
    for (size_t I = 0; I < Args.size(); ++I) {
      if (Args[I] == "--top" && I + 1 < Args.size())
        Query = "?k=" + Args[++I];
      else if (Args[I] == "--reset")
        Reset = true;
      else {
        std::fprintf(stderr, "error: unknown profile flag '%s'\n",
                     Args[I].c_str());
        return usage(argv[0]);
      }
    }
    if (Reset)
      Query += Query.empty() ? "?reset=1" : "&reset=1";
    return finish(C.get("/admin/profile" + Query), /*MidCommand=*/true);
  }
  if (std::strcmp(Cmd, "history") == 0)
    return finish(C.get("/admin/journal"), /*MidCommand=*/true);
  if (std::strcmp(Cmd, "quarantine") == 0)
    return finish(C.get("/admin/journal?quarantined=1"), /*MidCommand=*/true);
  if (std::strcmp(Cmd, "rollback") == 0) {
    if (Args.empty())
      return usage(argv[0]);
    return finish(C.postWithRetry("/admin/rollback?name=" + Args[0], "",
                                  "text/plain"),
                  /*MidCommand=*/true);
  }
  if (std::strcmp(Cmd, "rollout") == 0) {
    if (Args.empty())
      return usage(argv[0]);
    Expected<std::string> Artifact = readFile(Args[0].c_str());
    if (!Artifact) {
      std::fprintf(stderr, "error: %s\n", Artifact.error().str().c_str());
      return 2;
    }
    RolloutFlags F;
    std::string Query;
    auto Append = [&Query](const char *Key, const std::string &Val) {
      Query += Query.empty() ? '?' : '&';
      Query += Key;
      Query += '=';
      Query += Val;
    };
    for (size_t I = 1; I < Args.size(); ++I) {
      const std::string &A = Args[I];
      std::string V = I + 1 < Args.size() ? Args[I + 1] : "";
      if (A == "--canary-workers")
        Append("canary_workers", V);
      else if (A == "--window-ms") {
        Append("window_ms", V);
        F.WindowMs = std::strtoull(V.c_str(), nullptr, 10);
      } else if (A == "--max-error-delta")
        Append("max_error_delta", V);
      else if (A == "--max-latency-delta-us")
        Append("max_latency_delta_us", V);
      else if (A == "--min-samples")
        Append("min_samples", V);
      else if (A == "--max-canary-traps")
        Append("max_canary_traps", V);
      else if (A == "--stage-timeout-ms") {
        Append("stage_timeout_ms", V);
        F.StageTimeoutMs = std::strtoull(V.c_str(), nullptr, 10);
      } else {
        std::fprintf(stderr, "error: unknown rollout flag '%s'\n", A.c_str());
        return usage(argv[0]);
      }
      ++I; // consumed the value
    }
    F.Query = std::move(Query);
    return runRollout(C, *Artifact, F);
  }
  return usage(argv[0]);
}
