//===- tools/dsu-updatectl.cpp - Remote update control CLI ----*- C++ -*-===//
///
/// \file
/// Drives a running FlashEd server's /admin control plane, closing the
/// build -> ship -> hot-load loop end to end:
///
///   dsu-updatectl stage    <port> <patch-file>   POST the artifact; the
///                                                server stages it off-thread
///                                                and commits at its next
///                                                idle update point
///   dsu-updatectl log      <port>                GET the update log (JSON:
///                                                phase, stage/commit timings,
///                                                failure reasons)
///   dsu-updatectl status   <port> [--workers]    GET counters + queue depth;
///                                                --workers requires the
///                                                per-worker state array (a
///                                                reactor pool attached) and
///                                                fails when absent
///   dsu-updatectl metrics  <port>                GET /admin/metrics (the
///                                                text exposition: per-worker
///                                                counters, pause + epoch +
///                                                stage->commit histograms)
///   dsu-updatectl rollback <port> <updateable>   roll one function back;
///                                                a 503 means "busy, retry"
///
/// Exit status: 0 on 2xx, 2 on usage errors, 3 on transport errors, and
/// the HTTP status class (4, 5) otherwise; `status --workers` against a
/// poolless server exits 1.
///
//===----------------------------------------------------------------------===//

#include "flashed/Client.h"
#include "support/MemoryBuffer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace dsu;
using namespace dsu::flashed;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s stage <port> <patch-file>\n"
               "       %s log <port>\n"
               "       %s status <port> [--workers]\n"
               "       %s metrics <port>\n"
               "       %s rollback <port> <updateable-name>\n",
               Argv0, Argv0, Argv0, Argv0, Argv0);
  return 2;
}

int finish(Expected<FetchResult> R) {
  if (!R) {
    std::fprintf(stderr, "error: %s\n", R.error().str().c_str());
    return 3;
  }
  std::printf("%s\n", R->Body.c_str());
  if (R->Status >= 200 && R->Status < 300)
    return 0;
  std::fprintf(stderr, "HTTP %d\n", R->Status);
  return R->Status / 100;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 3)
    return usage(argv[0]);
  const char *Cmd = argv[1];
  uint16_t Port = static_cast<uint16_t>(std::atoi(argv[2]));
  if (Port == 0) {
    std::fprintf(stderr, "error: bad port '%s'\n", argv[2]);
    return 2;
  }

  if (std::strcmp(Cmd, "stage") == 0) {
    if (argc < 4)
      return usage(argv[0]);
    Expected<std::string> Artifact = readFile(argv[3]);
    if (!Artifact) {
      std::fprintf(stderr, "error: %s\n", Artifact.error().str().c_str());
      return 2;
    }
    return finish(httpPost(Port, "/admin/patches", *Artifact,
                           "application/x-dsu-patch"));
  }
  if (std::strcmp(Cmd, "log") == 0)
    return finish(httpGet(Port, "/admin/updates"));
  if (std::strcmp(Cmd, "status") == 0) {
    bool WantWorkers = argc > 3 && std::strcmp(argv[3], "--workers") == 0;
    Expected<FetchResult> R = httpGet(Port, "/admin/status");
    // --workers asserts the multi-core serving plane is attached: the
    // per-worker state array is how operators see parked/stuck workers
    // and per-worker epoch lag.
    bool MissingWorkers =
        WantWorkers && R &&
        R->Body.find("\"worker_state\"") == std::string::npos;
    int Code = finish(std::move(R));
    if (Code == 0 && MissingWorkers) {
      std::fprintf(stderr,
                   "error: no per-worker state (no reactor pool attached)\n");
      return 1;
    }
    return Code;
  }
  if (std::strcmp(Cmd, "metrics") == 0)
    return finish(httpGet(Port, "/admin/metrics"));
  if (std::strcmp(Cmd, "rollback") == 0) {
    if (argc < 4)
      return usage(argv[0]);
    return finish(httpPost(Port,
                           std::string("/admin/rollback?name=") + argv[3],
                           "", "text/plain"));
  }
  return usage(argv[0]);
}
