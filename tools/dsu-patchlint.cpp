//===- tools/dsu-patchlint.cpp - Offline patch-safety linter --*- C++ -*-===//
///
/// \file
/// Runs a patch artifact through the whole-patch update-safety analyzer
/// without a running server: the same passes the staging pipeline runs
/// between manifest parse and the journal Intent, plus the bytecode
/// verifier, against a freshly initialized program image.
///
///   dsu-patchlint [--json] [--env flashed|none] [--fuel N] <file.dsup>...
///
///   --json          machine-readable output (one object; "lint" array
///                   with per-file finding lists) — what the CI lint job
///                   consumes
///   --env flashed   lint against the FlashEd program image (types,
///                   exports, updateable slots, state cells) — the
///                   default, since shipped patches target it
///   --env none      lint against an empty runtime: only self-contained
///                   patches (no imports, no live-slot provides) load
///   --fuel N        fuel budget for the exhaustion pass (default: the
///                   interpreter's 64M budget)
///
/// Exit status: 0 when every file loads, verifies and has no
/// error-severity finding; 1 when any file fails to load/verify or
/// carries an error finding; 2 on usage errors.  Warnings and infos are
/// reported but do not fail the lint.
///
//===----------------------------------------------------------------------===//

#include "analysis/PatchAnalyzer.h"
#include "core/Runtime.h"
#include "flashed/App.h"
#include "patch/PatchLoader.h"
#include "support/MemoryBuffer.h"
#include "support/StringUtil.h"
#include "support/Timer.h"
#include "vtal/Verifier.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace dsu;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--json] [--env flashed|none] [--fuel N] "
               "<file.dsup>...\n",
               Argv0);
  return 2;
}

void jsonEscapeTo(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out += C;
    }
  }
}

/// Where a finding anchors, e.g. " handle:pc2" — empty for patch-level.
std::string anchor(const analysis::Finding &F) {
  if (F.Fn.empty())
    return "";
  std::string A = " " + F.Fn;
  if (F.HasPC)
    A += formatString(":pc%u", F.PC);
  return A;
}

struct FileResult {
  std::string File;
  std::string PatchId;
  Error LoadErr; ///< load or verify failure (analysis never ran)
  analysis::AnalysisReport Report;
};

} // namespace

int main(int argc, char **argv) {
  bool Json = false;
  bool EnvFlashed = true;
  uint64_t Fuel = 0; // 0 = the analyzer's default (the interpreter's)
  std::vector<std::string> Files;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--json") == 0)
      Json = true;
    else if (std::strcmp(argv[I], "--env") == 0 && I + 1 < argc) {
      std::string E = argv[++I];
      if (E == "flashed")
        EnvFlashed = true;
      else if (E == "none")
        EnvFlashed = false;
      else {
        std::fprintf(stderr, "error: unknown --env '%s'\n", E.c_str());
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[I], "--fuel") == 0 && I + 1 < argc)
      Fuel = std::strtoull(argv[++I], nullptr, 10);
    else if (argv[I][0] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", argv[I]);
      return usage(argv[0]);
    } else
      Files.push_back(argv[I]);
  }
  if (Files.empty())
    return usage(argv[0]);

  // The lint environment: the program image the patches would be
  // staged into.  FlashedApp::init defines the named types, host
  // exports, updateable pipeline slots and the cache state cell —
  // exactly what the in-server analyzer sees on a fresh boot.
  Runtime RT;
  flashed::FlashedApp App(RT);
  if (EnvFlashed) {
    if (Error E = App.init(flashed::DocStore())) {
      std::fprintf(stderr, "error: flashed env init: %s\n",
                   E.str().c_str());
      return 1;
    }
  }

  std::vector<FileResult> Results;
  size_t ErrorsTotal = 0;
  bool AnyFailed = false;
  for (const std::string &File : Files) {
    FileResult FR;
    FR.File = File;
    Expected<std::string> Text = readFile(File.c_str());
    if (!Text) {
      FR.LoadErr = Text.takeError();
    } else {
      Expected<Patch> P = loadVtalPatch(RT.types(), RT.exports(), *Text,
                                        File);
      if (!P) {
        FR.LoadErr = P.takeError();
      } else {
        FR.PatchId = P->Id;
        // The verifier runs first, as it does at stage time; its
        // diagnostics now carry the offending instruction's text.
        if (P->VtalMod)
          FR.LoadErr = vtal::verifyModule(*P->VtalMod);
        if (!FR.LoadErr) {
          Timer T;
          analysis::AnalyzerEnv Env{RT.types(), RT.transformers(),
                                    RT.exports(), RT.updateables(),
                                    RT.state()};
          FR.Report = analysis::analyzePatch(*P, Env, Fuel);
          FR.Report.AnalysisMs = T.elapsedMs();
        }
      }
    }
    if (FR.LoadErr || FR.Report.errorCount())
      AnyFailed = true;
    ErrorsTotal += FR.Report.errorCount();
    Results.push_back(std::move(FR));
  }

  if (Json) {
    std::string J = "{\n  \"lint\": [";
    bool FirstFile = true;
    for (const FileResult &FR : Results) {
      J += FirstFile ? "\n" : ",\n";
      FirstFile = false;
      J += "    {\"file\": \"";
      jsonEscapeTo(J, FR.File);
      J += "\", \"patch\": \"";
      jsonEscapeTo(J, FR.PatchId);
      J += "\"";
      if (FR.LoadErr) {
        J += ", \"ok\": false, \"load_error\": \"";
        jsonEscapeTo(J, FR.LoadErr.str());
        J += "\"}";
        continue;
      }
      const analysis::AnalysisReport &R = FR.Report;
      J += formatString(", \"ok\": %s, \"errors\": %zu, "
                        "\"warnings\": %zu, \"analysis_ms\": %.3f, "
                        "\"code_only_predicted\": %s, \"findings\": [",
                        R.errorCount() ? "false" : "true", R.errorCount(),
                        R.warningCount(), R.AnalysisMs,
                        R.CodeOnlyPredicted ? "true" : "false");
      bool FirstF = true;
      for (const analysis::Finding &F : R.Findings) {
        J += FirstF ? "" : ", ";
        FirstF = false;
        J += "{\"severity\": \"";
        J += analysis::severityName(F.Sev);
        J += "\", \"code\": \"";
        jsonEscapeTo(J, F.Code);
        J += "\", \"message\": \"";
        jsonEscapeTo(J, F.Message);
        J += '"';
        if (!F.Fn.empty()) {
          J += ", \"fn\": \"";
          jsonEscapeTo(J, F.Fn);
          J += '"';
        }
        if (F.HasPC)
          J += formatString(", \"pc\": %u", F.PC);
        J += '}';
      }
      J += "]}";
    }
    J += formatString("\n  ],\n  \"errors_total\": %zu,\n  \"ok\": %s\n}\n",
                      ErrorsTotal, AnyFailed ? "false" : "true");
    std::printf("%s", J.c_str());
    return AnyFailed ? 1 : 0;
  }

  for (const FileResult &FR : Results) {
    if (FR.LoadErr) {
      std::printf("%s: error: %s\n", FR.File.c_str(),
                  FR.LoadErr.str().c_str());
      continue;
    }
    const analysis::AnalysisReport &R = FR.Report;
    for (const analysis::Finding &F : R.Findings)
      std::printf("%s: %s[%s]%s: %s\n", FR.File.c_str(),
                  analysis::severityName(F.Sev), F.Code.c_str(),
                  anchor(F).c_str(), F.Message.c_str());
    std::printf("%s: patch %s: %zu error(s), %zu warning(s), %zu "
                "finding(s) total, %s commit predicted (%.2f ms)\n",
                FR.File.c_str(), FR.PatchId.c_str(), R.errorCount(),
                R.warningCount(), R.Findings.size(),
                R.CodeOnlyPredicted ? "code-only" : "state-migrating",
                R.AnalysisMs);
  }
  return AnyFailed ? 1 : 0;
}
