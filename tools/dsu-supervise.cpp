//===- tools/dsu-supervise.cpp - Crash-restart supervisor -----*- C++ -*-===//
///
/// \file
/// A minimal fork/exec restart loop for dsu-flashed (or any server whose
/// update journal needs crash accounting): restarts a child that exits
/// abnormally, with capped exponential backoff, and reports *how* the
/// previous run ended to the next one via two environment variables:
///
///   DSU_SUPERVISE_LAST_EXIT   "exit:<code>" or "signal:<signo>"
///   DSU_SUPERVISE_BOOTS       1-based count of launches by this
///                             supervisor
///
/// dsu-flashed passes DSU_SUPERVISE_LAST_EXIT into
/// UpdateJournal::beginBoot(), which weaves it into the Crashed seals of
/// intents the dead run left open — so `dsu-updatectl history` shows not
/// just *that* a patch killed the server but what the kill looked like
/// (signal:9, signal:11, exit:134, ...).
///
/// A child that exits 0 ends the loop with exit 0: clean shutdown is a
/// success, not a restart.  SIGTERM/SIGINT are forwarded to the child so
/// `kill <supervisor>` drains the server instead of orphaning it.
///
//===----------------------------------------------------------------------===//

#include "support/StringUtil.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace dsu;

namespace {

/// The running child's pid, for signal forwarding (0 = none).  Written
/// only between fork and waitpid on the main flow; the handler reads it.
volatile pid_t ChildPid = 0;
volatile std::sig_atomic_t ForwardedSignal = 0;

void onForwardSignal(int Sig) {
  ForwardedSignal = Sig;
  pid_t P = ChildPid;
  if (P > 0)
    ::kill(P, Sig);
}

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--max-restarts N] [--backoff-ms N] "
               "[--backoff-max-ms N] -- command [args...]\n"
               "\n"
               "Restarts the command while it exits abnormally (capped\n"
               "exponential backoff between attempts); exits 0 when the\n"
               "command does.  The child sees DSU_SUPERVISE_LAST_EXIT\n"
               "(\"exit:N\" / \"signal:N\") and DSU_SUPERVISE_BOOTS.\n",
               Argv0);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  uint64_t MaxRestarts = 10;
  uint64_t BackoffMs = 50;
  uint64_t BackoffMaxMs = 2000;
  int CmdStart = -1;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--") {
      CmdStart = I + 1;
      break;
    }
    const char *P = I + 1 < argc ? argv[I + 1] : nullptr;
    if (A == "--max-restarts" && P && parseUInt(P, MaxRestarts))
      ++I;
    else if (A == "--backoff-ms" && P && parseUInt(P, BackoffMs))
      ++I;
    else if (A == "--backoff-max-ms" && P && parseUInt(P, BackoffMaxMs))
      ++I;
    else
      return usage(argv[0]);
  }
  if (CmdStart < 0 || CmdStart >= argc)
    return usage(argv[0]);

  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onForwardSignal;
  ::sigaction(SIGTERM, &SA, nullptr);
  ::sigaction(SIGINT, &SA, nullptr);

  std::string LastExit; ///< empty on the first boot
  uint64_t Boots = 0;
  uint64_t Delay = BackoffMs;

  while (true) {
    ++Boots;
    pid_t Pid = ::fork();
    if (Pid < 0) {
      std::fprintf(stderr, "dsu-supervise: fork: %s\n",
                   std::strerror(errno));
      return 1;
    }
    if (Pid == 0) {
      // Child: report the previous run's fate, then become the server.
      if (!LastExit.empty())
        ::setenv("DSU_SUPERVISE_LAST_EXIT", LastExit.c_str(), 1);
      ::setenv("DSU_SUPERVISE_BOOTS",
               formatString("%llu", static_cast<unsigned long long>(Boots))
                   .c_str(),
               1);
      ::execvp(argv[CmdStart], argv + CmdStart);
      std::fprintf(stderr, "dsu-supervise: exec %s: %s\n", argv[CmdStart],
                   std::strerror(errno));
      _exit(127);
    }

    ChildPid = Pid;
    int Status = 0;
    while (::waitpid(Pid, &Status, 0) < 0 && errno == EINTR)
      ; // a forwarded signal interrupts waitpid; keep reaping
    ChildPid = 0;

    if (WIFEXITED(Status)) {
      int Code = WEXITSTATUS(Status);
      if (Code == 0) {
        std::fprintf(stderr,
                     "dsu-supervise: clean exit after %llu boot(s)\n",
                     static_cast<unsigned long long>(Boots));
        return 0;
      }
      if (Code == 127)
        return 127; // exec failed: restarting cannot help
      LastExit = formatString("exit:%d", Code);
    } else if (WIFSIGNALED(Status)) {
      LastExit = formatString("signal:%d", WTERMSIG(Status));
    } else {
      LastExit = "unknown";
    }

    if (Boots > MaxRestarts) {
      std::fprintf(stderr,
                   "dsu-supervise: giving up after %llu boot(s) (%s)\n",
                   static_cast<unsigned long long>(Boots),
                   LastExit.c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "dsu-supervise: child died (%s); restart %llu in %llums\n",
                 LastExit.c_str(),
                 static_cast<unsigned long long>(Boots),
                 static_cast<unsigned long long>(Delay));
    ::usleep(static_cast<useconds_t>(Delay * 1000));
    Delay = Delay * 2 > BackoffMaxMs ? BackoffMaxMs : Delay * 2;
  }
}
