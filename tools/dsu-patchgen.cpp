//===- tools/dsu-patchgen.cpp - Patch generator CLI -----------*- C++ -*-===//
///
/// \file
/// Command-line front end for the semi-automatic patch generator:
///
///   dsu-patchgen <old-version.vm> <new-version.vm> [output-prefix]
///
/// Reads two version manifests, diffs them, and writes
/// `<prefix>.dsup-manifest` (the patch manifest) and `<prefix>.cpp`
/// (the native stub skeleton to finish and compile with
/// `g++ -shared -fPIC`).  With no prefix, prints both to stdout.
///
//===----------------------------------------------------------------------===//

#include "patch/Generator.h"
#include "support/MemoryBuffer.h"

#include <cstdio>

using namespace dsu;

int main(int argc, char **argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <old-version.vm> <new-version.vm> "
                 "[output-prefix]\n",
                 argv[0]);
    return 2;
  }

  auto Load = [](const char *Path) -> VersionManifest {
    Expected<std::string> Text = readFile(Path);
    if (!Text) {
      std::fprintf(stderr, "error: %s\n", Text.error().str().c_str());
      std::exit(1);
    }
    Expected<VersionManifest> M = VersionManifest::parse(*Text);
    if (!M) {
      std::fprintf(stderr, "error: %s: %s\n", Path,
                   M.error().str().c_str());
      std::exit(1);
    }
    return std::move(*M);
  };

  VersionManifest Old = Load(argv[1]);
  VersionManifest New = Load(argv[2]);

  Expected<GeneratedPatch> G = generatePatch(Old, New);
  if (!G) {
    std::fprintf(stderr, "error: %s\n", G.error().str().c_str());
    return 1;
  }

  std::fprintf(stderr,
               "%s: unchanged=%u body-changed=%u sig-changed=%u added=%u "
               "removed=%u types-bumped=%u\n",
               G->Manifest.Id.c_str(), G->Stats.Unchanged,
               G->Stats.BodyChanged, G->Stats.SigChanged, G->Stats.Added,
               G->Stats.Removed, G->Stats.TypesBumped);
  for (const std::string &W : G->Manifest.Warnings)
    std::fprintf(stderr, "warning: %s\n", W.c_str());

  if (argc >= 4) {
    std::string Prefix = argv[3];
    if (Error E = writeFile(Prefix + ".dsup-manifest",
                            G->Manifest.print())) {
      std::fprintf(stderr, "error: %s\n", E.str().c_str());
      return 1;
    }
    if (Error E = writeFile(Prefix + ".cpp", G->StubSource)) {
      std::fprintf(stderr, "error: %s\n", E.str().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s.dsup-manifest and %s.cpp\n",
                 Prefix.c_str(), Prefix.c_str());
    return 0;
  }

  std::printf(";; ---- patch manifest ----\n%s\n\n",
              G->Manifest.print().c_str());
  std::printf("// ---- stub skeleton ----\n%s", G->StubSource.c_str());
  return 0;
}
