//===- tools/dsu-flashed.cpp - The FlashEd server binary ------*- C++ -*-===//
///
/// \file
/// FlashEd as a standalone, restartable process — the deployment shape
/// the durable update journal exists for.  Boot order is the crash-safe
/// sequence the persist subsystem specifies:
///
///   1. open the journal directory (flock'd: a second live instance is
///      refused with a clear EC_IO error instead of interleaving
///      appends),
///   2. beginBoot(): seal intents the previous run left open (Crashed
///      on a crash, RolledBack after a clean stop), apply the
///      crash-loop quarantine policy, record this boot,
///   3. replay the committed patch chain through the ordinary
///      stage->commit pipeline,
///   4. only then open the listeners.
///
/// SIGTERM/SIGINT drain the reactor pool gracefully and seal a
/// CleanShutdown record, so the next boot can tell a deliberate stop
/// from a crash.  Run under tools/dsu-supervise to close the loop: the
/// supervisor restarts crashes with capped backoff and reports the
/// previous exit status via DSU_SUPERVISE_LAST_EXIT, which beginBoot
/// weaves into the Crashed seals' reasons.
///
//===----------------------------------------------------------------------===//

#include "flashed/App.h"
#include "net/ReactorPool.h"
#include "persist/Journal.h"
#include "persist/Replay.h"
#include "runtime/UpdateController.h"
#include "support/MemoryBuffer.h"
#include "support/StringUtil.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include <unistd.h>

using namespace dsu;
using namespace dsu::flashed;

namespace {

/// Async-signal-safe stop flag: the handlers only set it; the main loop
/// polls it and runs the orderly shutdown outside signal context.
volatile std::sig_atomic_t StopRequested = 0;

void onStopSignal(int) { StopRequested = 1; }

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s --journal-dir DIR [options]\n"
      "\n"
      "  --journal-dir DIR      durable update journal directory "
      "(required;\n"
      "                         created if missing, flock'd while "
      "running)\n"
      "  --port N               listen port (default 0 = ephemeral)\n"
      "  --port-file PATH       write the bound port here once "
      "listening\n"
      "  --workers N            reactor pool workers (default 2)\n"
      "  --quarantine-after N   consecutive crashes before quarantine "
      "(default 3)\n"
      "  --no-sync              skip fsync on journal appends (tests "
      "only)\n",
      Argv0);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  std::string JournalDir;
  std::string PortFile;
  uint16_t Port = 0;
  unsigned Workers = 2;
  persist::UpdateJournal::Options JOpts;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Value = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    uint64_t V;
    if (A == "--journal-dir") {
      const char *P = Value();
      if (!P)
        return usage(argv[0]);
      JournalDir = P;
    } else if (A == "--port-file") {
      const char *P = Value();
      if (!P)
        return usage(argv[0]);
      PortFile = P;
    } else if (A == "--port") {
      const char *P = Value();
      if (!P || !parseUInt(P, V) || V > 65535)
        return usage(argv[0]);
      Port = static_cast<uint16_t>(V);
    } else if (A == "--workers") {
      const char *P = Value();
      if (!P || !parseUInt(P, V) || V == 0 || V > 64)
        return usage(argv[0]);
      Workers = static_cast<unsigned>(V);
    } else if (A == "--quarantine-after") {
      const char *P = Value();
      if (!P || !parseUInt(P, V) || V == 0)
        return usage(argv[0]);
      JOpts.QuarantineAfter = static_cast<unsigned>(V);
    } else if (A == "--no-sync") {
      JOpts.Sync = false;
    } else {
      std::fprintf(stderr, "dsu-flashed: unknown argument '%s'\n",
                   A.c_str());
      return usage(argv[0]);
    }
  }
  if (JournalDir.empty())
    return usage(argv[0]);

  // 1. The journal first: if the directory is locked by a live process
  // this must fail fast and loud, before any serving state exists.
  Expected<std::unique_ptr<persist::UpdateJournal>> JournalOrErr =
      persist::UpdateJournal::open(JournalDir, JOpts);
  if (!JournalOrErr) {
    std::fprintf(stderr, "dsu-flashed: %s\n",
                 JournalOrErr.error().str().c_str());
    return 1;
  }
  persist::UpdateJournal &Journal = **JournalOrErr;

  // 2. Crash accounting + quarantine policy.  The supervisor (if any)
  // reports how the previous run ended; its absence just means the
  // Crashed seals carry no exit status.
  const char *PrevExit = std::getenv("DSU_SUPERVISE_LAST_EXIT");
  persist::BootInfo Boot = Journal.beginBoot(PrevExit ? PrevExit : "");
  if (Boot.PrevCrashed)
    std::fprintf(stderr,
                 "dsu-flashed: previous run crashed (boot %llu; %u "
                 "unsealed intent(s) sealed crashed)\n",
                 static_cast<unsigned long long>(Boot.Boots),
                 Boot.CrashSealed);
  for (const std::string &Id : Boot.NewlyQuarantined)
    std::fprintf(stderr, "dsu-flashed: QUARANTINED patch %s\n", Id.c_str());

  // The app's document set is deterministic so crash-recovery tests can
  // assert byte-identical responses across a restart.
  Runtime RT;
  FlashedApp App(RT);
  DocStore Docs;
  Docs.put("/index.html", "<html><h1>dsu-flashed</h1></html>");
  Docs.put("/doc.html", "<html>Dynamic Software Updating, durably</html>");
  Docs.put("/style.css", "h1 { color: teal }");
  if (Error E = App.init(std::move(Docs))) {
    std::fprintf(stderr, "dsu-flashed: init: %s\n", E.str().c_str());
    return 1;
  }

  // 3. Replay the committed chain through the ordinary pipeline before
  // any listener opens: requests never observe a half-restored chain.
  RT.attachJournal(&Journal);
  App.attachJournal(Journal);
  persist::ReplayStats Replay = persist::replayJournal(RT, Journal);
  std::printf("dsu-flashed: boot %llu, chain %u/%u replayed in %llums%s\n",
              static_cast<unsigned long long>(Boot.Boots), Replay.Committed,
              Replay.Attempted,
              static_cast<unsigned long long>(Replay.DurationMs),
              Boot.NewlyQuarantined.empty() ? "" : " [quarantine applied]");

  // 4. Open the listeners.
  App.enableAdmin(RT.controller());
  net::PoolOptions O;
  O.Workers = Workers;
  O.Port = Port;
  O.PollTimeoutMs = 2;
  net::ReactorPool Pool(
      [&App](const RequestHead &Head, std::string_view Raw, std::string &Out,
             SharedBody &Body) { App.handleInto(Head, Raw, Out, Body); },
      O);
  Pool.setUpdateRuntime(RT);
  App.attachPool(Pool);
  if (Error E = Pool.start()) {
    std::fprintf(stderr, "dsu-flashed: listen: %s\n", E.str().c_str());
    return 1;
  }

  // Publish the bound port (write-to-temp + rename, so a reader never
  // sees a half-written file), then install the graceful-stop handlers.
  if (!PortFile.empty()) {
    std::string Tmp = PortFile + ".tmp";
    if (Error E = writeFile(Tmp, formatString("%u\n", Pool.port())))
      std::fprintf(stderr, "dsu-flashed: port file: %s\n", E.str().c_str());
    else
      (void)::rename(Tmp.c_str(), PortFile.c_str());
  }
  std::printf("dsu-flashed: serving on 127.0.0.1:%u (%u workers, journal "
              "%s)\n",
              Pool.port(), Workers, JournalDir.c_str());
  std::fflush(stdout);

  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onStopSignal;
  ::sigaction(SIGTERM, &SA, nullptr);
  ::sigaction(SIGINT, &SA, nullptr);

  while (!StopRequested)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // Graceful stop: drain the pool (buffered pipelined requests are
  // served, backpressured output flushed), then seal CleanShutdown so
  // the next boot knows this was deliberate — a staged-but-uncommitted
  // intent left behind is sealed RolledBack there, not Crashed.
  std::printf("dsu-flashed: draining (signal)\n");
  std::fflush(stdout);
  Pool.stop();
  if (Error E = Journal.sealCleanShutdown())
    std::fprintf(stderr, "dsu-flashed: shutdown seal: %s\n",
                 E.str().c_str());
  std::printf("dsu-flashed: clean shutdown\n");
  return 0;
}
