//===- examples/quickstart.cpp - dsu in five minutes ----------*- C++ -*-===//
///
/// \file
/// The smallest complete dsu embedding:
///
///   1. make a function *updateable* (one indirection, typed);
///   2. run it;
///   3. build a *dynamic patch* with a new implementation;
///   4. request the update and apply it at an *update point*;
///   5. watch behaviour change with zero downtime;
///   6. see an ill-typed patch get *rejected* by the dynamic linker.
///
/// Also shows the verified-code path: the same update shipped as a VTAL
/// module that is machine-checked before linking.
///
//===----------------------------------------------------------------------===//

#include "core/DSU.h"

#include <cstdio>

using namespace dsu;

namespace {

// Version 1: the naive recursive factorial we shipped.
int64_t factV1(int64_t N) { return N <= 1 ? 1 : N * factV1(N - 1); }

// Version 2: the iterative replacement a patch will install.
int64_t factV2(int64_t N) {
  int64_t Acc = 1;
  for (int64_t I = 2; I <= N; ++I)
    Acc *= I;
  return Acc;
}

// A deliberately wrong-typed "fix" (string instead of int).
std::string evilFact(std::string S) { return S; }

} // namespace

int main() {
  Runtime RT;

  // 1. Define the updateable function.  The handle calls through one
  //    atomic indirection — the compiled artifact of updateability.
  auto Fact = cantFail(RT.defineUpdateable("app.fact", &factV1));
  std::printf("v%u: fact(10) = %lld\n", Fact.version(),
              static_cast<long long>(Fact(10)));

  // 2. Build a patch in-process and queue it.
  Patch P = cantFail(PatchBuilder(RT.types(), "fact-v2")
                         .describe("iterative factorial")
                         .provide("app.fact", &factV2)
                         .build());
  RT.requestUpdate(std::move(P));
  std::printf("update queued; pending=%d, still v%u until the update "
              "point\n",
              RT.updatePending(), Fact.version());

  // 3. The program reaches its update point (e.g. top of an event loop).
  unsigned Applied = RT.updatePoint();
  std::printf("update point: %u patch(es) applied\n", Applied);
  std::printf("v%u: fact(10) = %lld (same answer, new code)\n",
              Fact.version(), static_cast<long long>(Fact(10)));

  // 4. Type safety: a patch with the wrong type is rejected atomically.
  Patch Evil = cantFail(PatchBuilder(RT.types(), "evil")
                            .provide("app.fact", &evilFact)
                            .build());
  Error E = RT.applyNow(std::move(Evil));
  std::printf("ill-typed patch: %s\n", E.str().c_str());
  std::printf("still v%u and still correct: fact(5) = %lld\n",
              Fact.version(), static_cast<long long>(Fact(5)));

  // 5. The verified-code path: the same function shipped as VTAL,
  //    machine-checked before linking (the paper's TAL pipeline).
  const char *VtalPatch = R"dsu(
(patch
  (id "fact-v3-vtal")
  (description "factorial shipped as verifiable bytecode")
  (provides (fn (name "app.fact") (type "fn(int) -> int")
                (vtal-fn "fact")))
  (vtal-module
"module fact_mod
func fact (n: int) -> int {
  locals (acc: int, i: int)
  push.i 1
  store acc
  push.i 1
  store i
loop:
  load i
  load n
  gt
  brif done
  load acc
  load i
  mul
  store acc
  load i
  push.i 1
  add
  store i
  br loop
done:
  load acc
  ret
}"))
)dsu";
  Patch V3 = cantFail(loadVtalPatch(RT.types(), RT.exports(), VtalPatch),
                      "load vtal patch");
  cantFail(RT.applyNow(std::move(V3)), "apply vtal patch");
  std::printf("v%u (verified VTAL): fact(12) = %lld\n", Fact.version(),
              static_cast<long long>(Fact(12)));

  // 6. The update log is the paper's per-patch timing table.
  std::printf("\nupdate log:\n");
  for (const UpdateRecord &Rec : RT.updateLog())
    std::printf("  %-12s %-8s verify %.3fms link %.3fms xform %.3fms\n",
                Rec.PatchId.c_str(), Rec.Succeeded ? "applied" : "REJECTED",
                Rec.VerifyMs, Rec.LinkMs, Rec.TransformMs);
  return 0;
}
