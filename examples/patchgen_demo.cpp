//===- examples/patchgen_demo.cpp - The patch generator -------*- C++ -*-===//
///
/// \file
/// The semi-automatic patch generator end to end, reproducing §4 of the
/// PLDI 2001 paper: two version manifests of a program are diffed, the
/// generator classifies every change, emits the patch manifest plus a
/// C++ stub skeleton, and a human finishes the transformer.  The
/// finished patch is then applied to a live runtime.
///
//===----------------------------------------------------------------------===//

#include "core/DSU.h"

#include <cstdio>

using namespace dsu;

namespace {

const char *OldVersion = R"dsu(
(version-manifest
  (program "imgserv")
  (version 7)
  (functions
    (fn (name "imgserv.resize") (type "fn(string, int) -> string")
        (body-hash "b1-resize") (impl "dsu_v7_resize"))
    (fn (name "imgserv.encode") (type "fn(string) -> string")
        (body-hash "b1-encode") (impl "dsu_v7_encode"))
    (fn (name "imgserv.stats") (type "fn() -> string")
        (body-hash "b1-stats") (impl "dsu_v7_stats")))
  (types
    (type (name "%imgmeta@1") (repr "{path: string, width: int}"))))
)dsu";

const char *NewVersion = R"dsu(
(version-manifest
  (program "imgserv")
  (version 8)
  (functions
    (fn (name "imgserv.resize") (type "fn(string, int) -> string")
        (body-hash "b2-resize") (impl "dsu_v8_resize"))      ; body changed
    (fn (name "imgserv.encode") (type "fn(string) -> string")
        (body-hash "b1-encode") (impl "dsu_v8_encode"))      ; unchanged
    (fn (name "imgserv.thumbnail") (type "fn(string) -> string")
        (body-hash "b2-thumb") (impl "dsu_v8_thumbnail"))    ; added
    ; imgserv.stats was removed in v8
    )
  (types
    ; representation changed: height field added -> needs v2 + transformer
    (type (name "%imgmeta@2")
          (repr "{path: string, width: int, height: int}"))))
)dsu";

struct MetaV1 {
  std::string Path;
  int64_t Width;
};
struct MetaV2 {
  std::string Path;
  int64_t Width;
  int64_t Height;
};

std::string resizeV8(std::string Path, int64_t W) {
  return "resized-v8:" + Path + ":" + std::to_string(W);
}
std::string thumbnailV8(std::string Path) { return "thumb:" + Path; }

} // namespace

int main() {
  VersionManifest Old =
      cantFail(VersionManifest::parse(OldVersion), "old manifest");
  VersionManifest New =
      cantFail(VersionManifest::parse(NewVersion), "new manifest");

  // 1. Generate.
  GeneratedPatch G = cantFail(generatePatch(Old, New), "generate");
  std::printf("== generator classification\n");
  std::printf("unchanged=%u body-changed=%u sig-changed=%u added=%u "
              "removed=%u types-bumped=%u\n\n",
              G.Stats.Unchanged, G.Stats.BodyChanged, G.Stats.SigChanged,
              G.Stats.Added, G.Stats.Removed, G.Stats.TypesBumped);

  std::printf("== generated patch manifest\n%s\n\n",
              G.Manifest.print().c_str());
  std::printf("== generated C++ stub skeleton (%zu bytes)\n",
              G.StubSource.size());
  std::printf("%.*s...\n\n", 400, G.StubSource.c_str());

  // 2. A human finishes the patch: here, in-process, supplying the two
  //    changed/new implementations and the transformer the skeleton
  //    stubbed out.
  Runtime RT;
  TypeContext &Ctx = RT.types();
  cantFail(RT.defineNamedType(
               {"imgmeta", 1},
               cantFail(parseType(Ctx, "{path: string, width: int}"),
                        "repr")),
           "type");
  StateCell *Meta = cantFail(
      RT.defineState("imgserv.current", Ctx.namedType("imgmeta", 1),
                     std::make_shared<MetaV1>(MetaV1{"/hero.png", 1024})),
      "cell");
  auto Resize = cantFail(
      RT.defineUpdateableFn<std::string, std::string, int64_t>(
          "imgserv.resize",
          [](std::string Path, int64_t W) {
            return "resized-v7:" + Path + ":" + std::to_string(W);
          }),
      "resize");

  PatchBuilder B(Ctx, G.Manifest.Id);
  B.describe(G.Manifest.Description);
  B.provide("imgserv.resize", &resizeV8);
  B.provide("imgserv.thumbnail", &thumbnailV8);
  for (const ManifestNewType &T : G.Manifest.NewTypes)
    B.defineType(cantFail(parseVersionedName(T.Name), "name"),
                 cantFail(parseType(Ctx, T.Repr), "repr"));
  for (const ManifestTransformer &X : G.Manifest.Transformers) {
    (void)X; // one transformer in this patch: %imgmeta@1 -> @2
    B.transformer(
        VersionBump{cantFail(parseVersionedName(X.From), "from"),
                    cantFail(parseVersionedName(X.To), "to")},
        [](const std::shared_ptr<void> &OldData,
           const StateCell &) -> Expected<std::shared_ptr<void>> {
          auto *V1 = static_cast<MetaV1 *>(OldData.get());
          // Backfill: assume 4:3 until re-measured.
          return std::shared_ptr<void>(std::make_shared<MetaV2>(
              MetaV2{V1->Path, V1->Width, V1->Width * 3 / 4}));
        });
  }
  Patch P = cantFail(B.build(), "build");

  // 3. Apply to the live program.
  std::printf("== applying %s\n", G.Manifest.Id.c_str());
  std::printf("before: resize = %s\n", Resize("/hero.png", 640).c_str());
  cantFail(RT.applyNow(std::move(P)), "apply");
  std::printf("after:  resize = %s\n", Resize("/hero.png", 640).c_str());
  std::printf("state migrated: %s -> {path=%s, width=%lld, height=%lld}\n",
              Meta->type()->str().c_str(),
              Meta->get<MetaV2>()->Path.c_str(),
              static_cast<long long>(Meta->get<MetaV2>()->Width),
              static_cast<long long>(Meta->get<MetaV2>()->Height));
  auto Thumb = cantFail(bindUpdateable<std::string(std::string)>(
                            RT.updateables(), Ctx, "imgserv.thumbnail"),
                        "thumbnail");
  std::printf("new fn: thumbnail = %s\n", Thumb("/hero.png").c_str());
  return 0;
}
