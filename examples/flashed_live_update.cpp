//===- examples/flashed_live_update.cpp - The paper's headline demo -*- C++ -*-//
///
/// \file
/// FlashEd end to end: an event-driven web server keeps serving while
/// the full P1..P5 patch series — plus the dlopen'd native P1 variant if
/// built — is applied through its update point.  This is the PLDI 2001
/// evaluation scenario in one binary: every request before, during and
/// after each update is answered; behaviour changes between requests,
/// never within one.
///
//===----------------------------------------------------------------------===//

#include "flashed/App.h"
#include "flashed/Client.h"
#include "flashed/Patches.h"
#include "flashed/Server.h"
#include "runtime/UpdateController.h"

#include <atomic>
#include <cstdio>
#include <thread>

using namespace dsu;
using namespace dsu::flashed;

namespace {

void show(const char *Label, uint16_t Port, const std::string &Target) {
  Expected<FetchResult> R = httpGet(Port, Target);
  if (!R) {
    std::printf("  %-34s -> error: %s\n", Target.c_str(),
                R.error().str().c_str());
    return;
  }
  std::string FirstLine = R->Headers.substr(0, R->Headers.find('\r'));
  std::printf("  %-34s -> %s  [%zu bytes] (%s)\n", Target.c_str(),
              FirstLine.c_str(), R->Body.size(), Label);
}

} // namespace

int main() {
  Runtime RT;
  FlashedApp App(RT);

  DocStore Docs;
  Docs.put("/index.html", "<html><h1>FlashEd</h1></html>");
  Docs.put("/paper.html", "<html>Dynamic Software Updating</html>");
  Docs.put("/style.css", "h1 { color: teal }");
  cantFail(App.init(std::move(Docs)), "init");

  Server Srv([&App](const std::string &Raw) { return App.handle(Raw); });
  Srv.setIdleHook([&RT] { RT.updatePoint(); }); // FlashEd's update point
  cantFail(Srv.listenOn(0), "listen");
  std::printf("FlashEd serving on 127.0.0.1:%u\n\n", Srv.port());

  std::atomic<bool> Stop{false};
  std::thread Loop([&] {
    cantFail(Srv.runUntil([&Stop] { return Stop.load(); }, 2), "serve");
  });

  auto applyAndWait = [&](Expected<Patch> P, const char *Name) {
    Patch Patch = cantFail(std::move(P), Name);
    unsigned Want = RT.updatesApplied() + 1;
    // Stage asynchronously on the controller's worker; the server's
    // idle hook commits at its next (quiescent) update point.
    RT.controller().stagePatch(std::move(Patch));
    while (RT.updatesApplied() < Want)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    UpdateRecord Rec = RT.updateLog().back();
    std::printf("\n== applied %s (staged %.3fms off-thread: verify %.3f "
                "prepare %.3f build %.3f; serving pause %.3fms%s, %zu "
                "cells)\n",
                Rec.PatchId.c_str(), Rec.StageMs, Rec.VerifyMs,
                Rec.PrepareMs, Rec.BuildMs, Rec.CommitMs,
                Rec.StateRebuilt ? " [state rebuilt]" : "",
                Rec.CellsMigrated);
  };

  std::printf("-- version 1 behaviour\n");
  show("works", Srv.port(), "/index.html");
  show("v1 bug: query string defeats lookup", Srv.port(),
       "/paper.html?ref=pldi01");
  show("v1: css is octet-stream", Srv.port(), "/style.css");

  applyAndWait(makePatchP1(App), "P1");
  show("query strings fixed, server never stopped", Srv.port(),
       "/paper.html?ref=pldi01");

  applyAndWait(makePatchP2(App), "P2");
  show("css typed properly now", Srv.port(), "/style.css");

  // Warm the cache, then migrate its representation live.
  show("warming cache", Srv.port(), "/paper.html");
  applyAndWait(makePatchP3(App), "P3");
  show("served from the *migrated* cache", Srv.port(), "/paper.html");
  {
    auto Stats = cantFail(bindUpdateable<std::string()>(
                              RT.updateables(), RT.types(),
                              "flashed.cache_stats"),
                          "cache_stats");
    std::printf("  cache stats (new fn from P3): %s\n", Stats().c_str());
  }

  applyAndWait(makePatchP4(App), "P4");
  applyAndWait(makePatchP5(App), "P5");
  show("still serving after 5 live updates", Srv.port(), "/index.html");
  {
    auto Count = cantFail(bindUpdateable<int64_t()>(RT.updateables(),
                                                    RT.types(),
                                                    "flashed.log_count"),
                          "log_count");
    auto Recent = cantFail(bindUpdateable<std::string()>(
                               RT.updateables(), RT.types(),
                               "flashed.log_recent"),
                           "log_recent");
    std::printf("  access log (new subsystem from P5): %lld entries\n",
                static_cast<long long>(Count()));
    std::printf("%s", Recent().c_str());
  }

  std::printf("\ntotal requests served across all versions: %llu\n",
              static_cast<unsigned long long>(Srv.requestsServed()));
  Stop.store(true);
  Loop.join();
  return 0;
}
