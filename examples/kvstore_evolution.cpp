//===- examples/kvstore_evolution.cpp - State transformation demo -*- C++ -*-//
///
/// \file
/// A long-running key-value store whose *record representation* evolves
/// under live data — the state-transformer half of the PLDI 2001 system.
///
///   v1: values are plain strings                  (%kvrec@1)
///   v2: values carry write timestamps             (%kvrec@2)
///   v3: values carry timestamps and access counts (%kvrec@3)
///
/// The store accumulates data at v1, then two patches bump the record
/// type.  The second update arrives as a single v1->v3 jump on a
/// *different* replica, exercising transformer chaining.
///
//===----------------------------------------------------------------------===//

#include "core/DSU.h"

#include <cstdio>
#include <map>

using namespace dsu;

namespace {

struct KvV1 {
  std::map<std::string, std::string> Rows;
};
struct RowV2 {
  std::string Value;
  int64_t WrittenAt;
};
struct KvV2 {
  std::map<std::string, RowV2> Rows;
};
struct RowV3 {
  std::string Value;
  int64_t WrittenAt;
  int64_t Reads;
};
struct KvV3 {
  std::map<std::string, RowV3> Rows;
};

TransformFn v1toV2() {
  return [](const std::shared_ptr<void> &Old,
            const StateCell &) -> Expected<std::shared_ptr<void>> {
    auto *V1 = static_cast<KvV1 *>(Old.get());
    auto V2 = std::make_shared<KvV2>();
    for (const auto &[K, V] : V1->Rows)
      V2->Rows[K] = RowV2{V, /*WrittenAt=*/0};
    return std::shared_ptr<void>(std::move(V2));
  };
}

TransformFn v2toV3() {
  return [](const std::shared_ptr<void> &Old,
            const StateCell &) -> Expected<std::shared_ptr<void>> {
    auto *V2 = static_cast<KvV2 *>(Old.get());
    auto V3 = std::make_shared<KvV3>();
    for (const auto &[K, R] : V2->Rows)
      V3->Rows[K] = RowV3{R.Value, R.WrittenAt, /*Reads=*/0};
    return std::shared_ptr<void>(std::move(V3));
  };
}

/// One store replica: a runtime, a typed state cell, and updateable
/// get/put entry points whose implementations track the representation.
struct Replica {
  Runtime RT;
  StateCell *Cell = nullptr;
  Updateable<std::string(std::string)> Get;
  Updateable<void(std::string, std::string)> Put;

  void init() {
    TypeContext &Ctx = RT.types();
    cantFail(RT.defineNamedType(
                 {"kvrec", 1},
                 cantFail(parseType(Ctx, "{value: string}"), "repr")),
             "type v1");
    Cell = cantFail(RT.defineState("kv.rows", Ctx.namedType("kvrec", 1),
                                   std::make_shared<KvV1>()),
                    "cell");
    StateCell *C = Cell;
    Get = cantFail(RT.defineUpdateableFn<std::string, std::string>(
                       "kv.get",
                       [C](std::string K) -> std::string {
                         auto &Rows = C->get<KvV1>()->Rows;
                         auto It = Rows.find(K);
                         return It == Rows.end() ? "<missing>" : It->second;
                       }),
                   "get");
    Put = cantFail(RT.defineUpdateableFn<void, std::string, std::string>(
                       "kv.put",
                       [C](std::string K, std::string V) {
                         C->get<KvV1>()->Rows[K] = std::move(V);
                       }),
                   "put");
  }

  Patch patchV2() {
    TypeContext &Ctx = RT.types();
    StateCell *C = Cell;
    int64_t *Clock = &LogicalClock;
    return cantFail(
        PatchBuilder(Ctx, "kv-v2-timestamps")
            .defineType({"kvrec", 2},
                        cantFail(parseType(
                                     Ctx, "{value: string, written: int}"),
                                 "repr2"))
            .transformer({{"kvrec", 1}, {"kvrec", 2}}, v1toV2())
            .provideBinding(
                "kv.get", Ctx.fnType({Ctx.stringType()}, Ctx.stringType()),
                makeClosureBinding<std::string, std::string>(
                    [C](std::string K) -> std::string {
                      auto &Rows = C->get<KvV2>()->Rows;
                      auto It = Rows.find(K);
                      if (It == Rows.end())
                        return "<missing>";
                      return It->second.Value + " @t" +
                             std::to_string(It->second.WrittenAt);
                    }))
            .provideBinding(
                "kv.put",
                Ctx.fnType({Ctx.stringType(), Ctx.stringType()},
                           Ctx.unitType()),
                makeClosureBinding<void, std::string, std::string>(
                    [C, Clock](std::string K, std::string V) {
                      C->get<KvV2>()->Rows[K] = RowV2{std::move(V),
                                                      ++*Clock};
                    }))
            .build(),
        "patch v2");
  }

  /// The v3 patch ships ONLY the v2->v3 transformer; applied to a v1
  /// replica it needs v1->v2 as well, which it also carries — the
  /// chain is resolved by the transform engine.
  Patch patchV3() {
    TypeContext &Ctx = RT.types();
    StateCell *C = Cell;
    return cantFail(
        PatchBuilder(Ctx, "kv-v3-access-counts")
            // Carries the v2 definition too, so the patch is applicable
            // to replicas that never saw the v2 patch (order matters:
            // declared bumps follow definition order).
            .defineType({"kvrec", 2},
                        cantFail(parseType(
                                     Ctx, "{value: string, written: int}"),
                                 "repr2"))
            .defineType(
                {"kvrec", 3},
                cantFail(parseType(Ctx, "{value: string, written: int, "
                                        "reads: int}"),
                         "repr3"))
            .transformer({{"kvrec", 1}, {"kvrec", 2}}, v1toV2())
            .transformer({{"kvrec", 2}, {"kvrec", 3}}, v2toV3())
            .provideBinding(
                "kv.get", Ctx.fnType({Ctx.stringType()}, Ctx.stringType()),
                makeClosureBinding<std::string, std::string>(
                    [C](std::string K) -> std::string {
                      auto &Rows = C->get<KvV3>()->Rows;
                      auto It = Rows.find(K);
                      if (It == Rows.end())
                        return "<missing>";
                      ++It->second.Reads;
                      return It->second.Value + " @t" +
                             std::to_string(It->second.WrittenAt) +
                             " reads=" +
                             std::to_string(It->second.Reads);
                    }))
            .provideBinding(
                "kv.put",
                Ctx.fnType({Ctx.stringType(), Ctx.stringType()},
                           Ctx.unitType()),
                makeClosureBinding<void, std::string, std::string>(
                    [C](std::string K, std::string V) {
                      C->get<KvV3>()->Rows[K] =
                          RowV3{std::move(V), 0, 0};
                    }))
            .build(),
        "patch v3");
  }

  int64_t LogicalClock = 0;
};

} // namespace

int main() {
  std::printf("== replica A: v1 -> v2 -> v3, one step at a time\n");
  Replica A;
  A.init();
  A.Put("lang", "popcorn");
  A.Put("venue", "pldi 2001");
  std::printf("v1 get(venue) = %s\n", A.Get("venue").c_str());

  cantFail(A.RT.applyNow(A.patchV2()), "apply v2");
  std::printf("after v2 (live data migrated): get(venue) = %s\n",
              A.Get("venue").c_str());
  A.Put("repro", "c++20");
  std::printf("new write gets a timestamp:     get(repro) = %s\n",
              A.Get("repro").c_str());

  cantFail(A.RT.applyNow(A.patchV3()), "apply v3");
  std::printf("after v3: get(venue) = %s\n", A.Get("venue").c_str());
  std::printf("after v3: get(venue) = %s  (reads count now)\n",
              A.Get("venue").c_str());
  std::printf("cell type: %s, generation %u\n",
              A.Cell->type()->str().c_str(), A.Cell->generation());

  std::printf("\n== replica B: v1 -> v3 in ONE update (transformer "
              "chain)\n");
  Replica B;
  B.init();
  B.Put("k", "value-written-at-v1");
  cantFail(B.RT.applyNow(B.patchV3()), "apply v3 directly");
  std::printf("after the jump: get(k) = %s\n", B.Get("k").c_str());
  std::printf("cell type: %s (migrated %%kvrec@1 -> @2 -> @3 in one "
              "update point)\n",
              B.Cell->type()->str().c_str());

  std::printf("\nupdate log (replica A):\n");
  for (const UpdateRecord &Rec : A.RT.updateLog())
    std::printf("  %-22s %s  transform %.3fms, %zu cell(s)\n",
                Rec.PatchId.c_str(),
                Rec.Succeeded ? "applied " : "REJECTED",
                Rec.TransformMs, Rec.CellsMigrated);
  return 0;
}
