# Empty dependencies file for patch_mathlib_v2.
# This may be replaced when dependencies are built.
