# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for patch_mathlib_v2.
