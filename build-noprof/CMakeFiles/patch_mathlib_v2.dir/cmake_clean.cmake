file(REMOVE_RECURSE
  "CMakeFiles/patch_mathlib_v2.dir/patches/mathlib_v2.cpp.o"
  "CMakeFiles/patch_mathlib_v2.dir/patches/mathlib_v2.cpp.o.d"
  "patches/mathlib_v2.pdb"
  "patches/mathlib_v2.so"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patch_mathlib_v2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
