file(REMOVE_RECURSE
  "CMakeFiles/bench_patch_generation.dir/bench/bench_patch_generation.cpp.o"
  "CMakeFiles/bench_patch_generation.dir/bench/bench_patch_generation.cpp.o.d"
  "bench/bench_patch_generation"
  "bench/bench_patch_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_patch_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
