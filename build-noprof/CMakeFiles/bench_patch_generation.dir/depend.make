# Empty dependencies file for bench_patch_generation.
# This may be replaced when dependencies are built.
