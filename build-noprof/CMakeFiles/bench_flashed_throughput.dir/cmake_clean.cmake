file(REMOVE_RECURSE
  "CMakeFiles/bench_flashed_throughput.dir/bench/bench_flashed_throughput.cpp.o"
  "CMakeFiles/bench_flashed_throughput.dir/bench/bench_flashed_throughput.cpp.o.d"
  "bench/bench_flashed_throughput"
  "bench/bench_flashed_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flashed_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
