# Empty dependencies file for dsu-vtal.
# This may be replaced when dependencies are built.
