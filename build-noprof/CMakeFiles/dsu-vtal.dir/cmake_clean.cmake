file(REMOVE_RECURSE
  "CMakeFiles/dsu-vtal.dir/tools/dsu-vtal.cpp.o"
  "CMakeFiles/dsu-vtal.dir/tools/dsu-vtal.cpp.o.d"
  "tools/dsu-vtal"
  "tools/dsu-vtal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsu-vtal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
