file(REMOVE_RECURSE
  "CMakeFiles/dsu-patchgen.dir/tools/dsu-patchgen.cpp.o"
  "CMakeFiles/dsu-patchgen.dir/tools/dsu-patchgen.cpp.o.d"
  "tools/dsu-patchgen"
  "tools/dsu-patchgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsu-patchgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
