# Empty dependencies file for dsu-patchgen.
# This may be replaced when dependencies are built.
