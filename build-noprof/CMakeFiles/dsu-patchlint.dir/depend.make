# Empty dependencies file for dsu-patchlint.
# This may be replaced when dependencies are built.
