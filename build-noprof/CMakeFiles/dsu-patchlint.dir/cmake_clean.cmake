file(REMOVE_RECURSE
  "CMakeFiles/dsu-patchlint.dir/tools/dsu-patchlint.cpp.o"
  "CMakeFiles/dsu-patchlint.dir/tools/dsu-patchlint.cpp.o.d"
  "tools/dsu-patchlint"
  "tools/dsu-patchlint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsu-patchlint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
