# Empty dependencies file for bench_code_size.
# This may be replaced when dependencies are built.
