file(REMOVE_RECURSE
  "CMakeFiles/bench_code_size.dir/bench/bench_code_size.cpp.o"
  "CMakeFiles/bench_code_size.dir/bench/bench_code_size.cpp.o.d"
  "bench/bench_code_size"
  "bench/bench_code_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_code_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
