# Empty dependencies file for dsu-flashed.
# This may be replaced when dependencies are built.
