file(REMOVE_RECURSE
  "CMakeFiles/dsu-flashed.dir/tools/dsu-flashed.cpp.o"
  "CMakeFiles/dsu-flashed.dir/tools/dsu-flashed.cpp.o.d"
  "tools/dsu-flashed"
  "tools/dsu-flashed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsu-flashed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
