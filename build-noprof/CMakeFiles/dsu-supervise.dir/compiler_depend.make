# Empty compiler generated dependencies file for dsu-supervise.
# This may be replaced when dependencies are built.
