file(REMOVE_RECURSE
  "CMakeFiles/dsu-supervise.dir/tools/dsu-supervise.cpp.o"
  "CMakeFiles/dsu-supervise.dir/tools/dsu-supervise.cpp.o.d"
  "tools/dsu-supervise"
  "tools/dsu-supervise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsu-supervise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
