# Empty dependencies file for dsu_persist_tests.
# This may be replaced when dependencies are built.
