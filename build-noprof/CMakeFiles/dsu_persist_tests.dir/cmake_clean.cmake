file(REMOVE_RECURSE
  "CMakeFiles/dsu_persist_tests.dir/tests/test_persist.cpp.o"
  "CMakeFiles/dsu_persist_tests.dir/tests/test_persist.cpp.o.d"
  "dsu_persist_tests"
  "dsu_persist_tests.pdb"
  "dsu_persist_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsu_persist_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
