# Empty dependencies file for dsu_core.
# This may be replaced when dependencies are built.
