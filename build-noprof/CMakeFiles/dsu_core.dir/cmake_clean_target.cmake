file(REMOVE_RECURSE
  "libdsu_core.a"
)
