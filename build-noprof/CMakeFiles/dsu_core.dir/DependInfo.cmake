
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/PatchAnalyzer.cpp" "CMakeFiles/dsu_core.dir/src/analysis/PatchAnalyzer.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/analysis/PatchAnalyzer.cpp.o.d"
  "/root/repo/src/core/Runtime.cpp" "CMakeFiles/dsu_core.dir/src/core/Runtime.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/core/Runtime.cpp.o.d"
  "/root/repo/src/epoch/Epoch.cpp" "CMakeFiles/dsu_core.dir/src/epoch/Epoch.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/epoch/Epoch.cpp.o.d"
  "/root/repo/src/flashed/App.cpp" "CMakeFiles/dsu_core.dir/src/flashed/App.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/flashed/App.cpp.o.d"
  "/root/repo/src/flashed/Client.cpp" "CMakeFiles/dsu_core.dir/src/flashed/Client.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/flashed/Client.cpp.o.d"
  "/root/repo/src/flashed/DocStore.cpp" "CMakeFiles/dsu_core.dir/src/flashed/DocStore.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/flashed/DocStore.cpp.o.d"
  "/root/repo/src/flashed/Http.cpp" "CMakeFiles/dsu_core.dir/src/flashed/Http.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/flashed/Http.cpp.o.d"
  "/root/repo/src/flashed/Patches.cpp" "CMakeFiles/dsu_core.dir/src/flashed/Patches.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/flashed/Patches.cpp.o.d"
  "/root/repo/src/link/Linker.cpp" "CMakeFiles/dsu_core.dir/src/link/Linker.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/link/Linker.cpp.o.d"
  "/root/repo/src/link/NativeLoader.cpp" "CMakeFiles/dsu_core.dir/src/link/NativeLoader.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/link/NativeLoader.cpp.o.d"
  "/root/repo/src/link/SymbolTable.cpp" "CMakeFiles/dsu_core.dir/src/link/SymbolTable.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/link/SymbolTable.cpp.o.d"
  "/root/repo/src/net/Reactor.cpp" "CMakeFiles/dsu_core.dir/src/net/Reactor.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/net/Reactor.cpp.o.d"
  "/root/repo/src/net/ReactorPool.cpp" "CMakeFiles/dsu_core.dir/src/net/ReactorPool.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/net/ReactorPool.cpp.o.d"
  "/root/repo/src/patch/AbiBridge.cpp" "CMakeFiles/dsu_core.dir/src/patch/AbiBridge.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/patch/AbiBridge.cpp.o.d"
  "/root/repo/src/patch/Generator.cpp" "CMakeFiles/dsu_core.dir/src/patch/Generator.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/patch/Generator.cpp.o.d"
  "/root/repo/src/patch/Manifest.cpp" "CMakeFiles/dsu_core.dir/src/patch/Manifest.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/patch/Manifest.cpp.o.d"
  "/root/repo/src/patch/PatchBuilder.cpp" "CMakeFiles/dsu_core.dir/src/patch/PatchBuilder.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/patch/PatchBuilder.cpp.o.d"
  "/root/repo/src/patch/PatchLoader.cpp" "CMakeFiles/dsu_core.dir/src/patch/PatchLoader.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/patch/PatchLoader.cpp.o.d"
  "/root/repo/src/persist/Journal.cpp" "CMakeFiles/dsu_core.dir/src/persist/Journal.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/persist/Journal.cpp.o.d"
  "/root/repo/src/persist/Replay.cpp" "CMakeFiles/dsu_core.dir/src/persist/Replay.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/persist/Replay.cpp.o.d"
  "/root/repo/src/runtime/RolloutController.cpp" "CMakeFiles/dsu_core.dir/src/runtime/RolloutController.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/runtime/RolloutController.cpp.o.d"
  "/root/repo/src/runtime/UpdateController.cpp" "CMakeFiles/dsu_core.dir/src/runtime/UpdateController.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/runtime/UpdateController.cpp.o.d"
  "/root/repo/src/runtime/UpdateQueue.cpp" "CMakeFiles/dsu_core.dir/src/runtime/UpdateQueue.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/runtime/UpdateQueue.cpp.o.d"
  "/root/repo/src/runtime/UpdateTransaction.cpp" "CMakeFiles/dsu_core.dir/src/runtime/UpdateTransaction.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/runtime/UpdateTransaction.cpp.o.d"
  "/root/repo/src/runtime/UpdateableRegistry.cpp" "CMakeFiles/dsu_core.dir/src/runtime/UpdateableRegistry.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/runtime/UpdateableRegistry.cpp.o.d"
  "/root/repo/src/state/StateCell.cpp" "CMakeFiles/dsu_core.dir/src/state/StateCell.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/state/StateCell.cpp.o.d"
  "/root/repo/src/state/Transform.cpp" "CMakeFiles/dsu_core.dir/src/state/Transform.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/state/Transform.cpp.o.d"
  "/root/repo/src/support/Error.cpp" "CMakeFiles/dsu_core.dir/src/support/Error.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/support/Error.cpp.o.d"
  "/root/repo/src/support/FaultInject.cpp" "CMakeFiles/dsu_core.dir/src/support/FaultInject.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/support/FaultInject.cpp.o.d"
  "/root/repo/src/support/Hashing.cpp" "CMakeFiles/dsu_core.dir/src/support/Hashing.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/support/Hashing.cpp.o.d"
  "/root/repo/src/support/Logging.cpp" "CMakeFiles/dsu_core.dir/src/support/Logging.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/support/Logging.cpp.o.d"
  "/root/repo/src/support/MemoryBuffer.cpp" "CMakeFiles/dsu_core.dir/src/support/MemoryBuffer.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/support/MemoryBuffer.cpp.o.d"
  "/root/repo/src/support/SExpr.cpp" "CMakeFiles/dsu_core.dir/src/support/SExpr.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/support/SExpr.cpp.o.d"
  "/root/repo/src/support/StringUtil.cpp" "CMakeFiles/dsu_core.dir/src/support/StringUtil.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/support/StringUtil.cpp.o.d"
  "/root/repo/src/support/Timer.cpp" "CMakeFiles/dsu_core.dir/src/support/Timer.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/support/Timer.cpp.o.d"
  "/root/repo/src/support/WorkerId.cpp" "CMakeFiles/dsu_core.dir/src/support/WorkerId.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/support/WorkerId.cpp.o.d"
  "/root/repo/src/trace/Profile.cpp" "CMakeFiles/dsu_core.dir/src/trace/Profile.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/trace/Profile.cpp.o.d"
  "/root/repo/src/trace/Trace.cpp" "CMakeFiles/dsu_core.dir/src/trace/Trace.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/trace/Trace.cpp.o.d"
  "/root/repo/src/types/Compat.cpp" "CMakeFiles/dsu_core.dir/src/types/Compat.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/types/Compat.cpp.o.d"
  "/root/repo/src/types/Substitute.cpp" "CMakeFiles/dsu_core.dir/src/types/Substitute.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/types/Substitute.cpp.o.d"
  "/root/repo/src/types/Type.cpp" "CMakeFiles/dsu_core.dir/src/types/Type.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/types/Type.cpp.o.d"
  "/root/repo/src/types/TypeParser.cpp" "CMakeFiles/dsu_core.dir/src/types/TypeParser.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/types/TypeParser.cpp.o.d"
  "/root/repo/src/vtal/Assembler.cpp" "CMakeFiles/dsu_core.dir/src/vtal/Assembler.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/vtal/Assembler.cpp.o.d"
  "/root/repo/src/vtal/Bytecode.cpp" "CMakeFiles/dsu_core.dir/src/vtal/Bytecode.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/vtal/Bytecode.cpp.o.d"
  "/root/repo/src/vtal/Interp.cpp" "CMakeFiles/dsu_core.dir/src/vtal/Interp.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/vtal/Interp.cpp.o.d"
  "/root/repo/src/vtal/Module.cpp" "CMakeFiles/dsu_core.dir/src/vtal/Module.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/vtal/Module.cpp.o.d"
  "/root/repo/src/vtal/Opcode.cpp" "CMakeFiles/dsu_core.dir/src/vtal/Opcode.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/vtal/Opcode.cpp.o.d"
  "/root/repo/src/vtal/Resolve.cpp" "CMakeFiles/dsu_core.dir/src/vtal/Resolve.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/vtal/Resolve.cpp.o.d"
  "/root/repo/src/vtal/Value.cpp" "CMakeFiles/dsu_core.dir/src/vtal/Value.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/vtal/Value.cpp.o.d"
  "/root/repo/src/vtal/Verifier.cpp" "CMakeFiles/dsu_core.dir/src/vtal/Verifier.cpp.o" "gcc" "CMakeFiles/dsu_core.dir/src/vtal/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
