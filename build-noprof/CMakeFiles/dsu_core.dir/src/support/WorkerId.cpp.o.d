CMakeFiles/dsu_core.dir/src/support/WorkerId.cpp.o: \
 /root/repo/src/support/WorkerId.cpp /usr/include/stdc-predef.h \
 /root/repo/src/support/WorkerId.h
