# Empty dependencies file for dsu_tests.
# This may be replaced when dependencies are built.
