
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_abi_bridge.cpp" "CMakeFiles/dsu_tests.dir/tests/test_abi_bridge.cpp.o" "gcc" "CMakeFiles/dsu_tests.dir/tests/test_abi_bridge.cpp.o.d"
  "/root/repo/tests/test_compat.cpp" "CMakeFiles/dsu_tests.dir/tests/test_compat.cpp.o" "gcc" "CMakeFiles/dsu_tests.dir/tests/test_compat.cpp.o.d"
  "/root/repo/tests/test_flashed_app.cpp" "CMakeFiles/dsu_tests.dir/tests/test_flashed_app.cpp.o" "gcc" "CMakeFiles/dsu_tests.dir/tests/test_flashed_app.cpp.o.d"
  "/root/repo/tests/test_flashed_http.cpp" "CMakeFiles/dsu_tests.dir/tests/test_flashed_http.cpp.o" "gcc" "CMakeFiles/dsu_tests.dir/tests/test_flashed_http.cpp.o.d"
  "/root/repo/tests/test_flashed_server.cpp" "CMakeFiles/dsu_tests.dir/tests/test_flashed_server.cpp.o" "gcc" "CMakeFiles/dsu_tests.dir/tests/test_flashed_server.cpp.o.d"
  "/root/repo/tests/test_flashed_vtal_patch.cpp" "CMakeFiles/dsu_tests.dir/tests/test_flashed_vtal_patch.cpp.o" "gcc" "CMakeFiles/dsu_tests.dir/tests/test_flashed_vtal_patch.cpp.o.d"
  "/root/repo/tests/test_generator.cpp" "CMakeFiles/dsu_tests.dir/tests/test_generator.cpp.o" "gcc" "CMakeFiles/dsu_tests.dir/tests/test_generator.cpp.o.d"
  "/root/repo/tests/test_linker.cpp" "CMakeFiles/dsu_tests.dir/tests/test_linker.cpp.o" "gcc" "CMakeFiles/dsu_tests.dir/tests/test_linker.cpp.o.d"
  "/root/repo/tests/test_manifest.cpp" "CMakeFiles/dsu_tests.dir/tests/test_manifest.cpp.o" "gcc" "CMakeFiles/dsu_tests.dir/tests/test_manifest.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "CMakeFiles/dsu_tests.dir/tests/test_metrics.cpp.o" "gcc" "CMakeFiles/dsu_tests.dir/tests/test_metrics.cpp.o.d"
  "/root/repo/tests/test_patchloader_native.cpp" "CMakeFiles/dsu_tests.dir/tests/test_patchloader_native.cpp.o" "gcc" "CMakeFiles/dsu_tests.dir/tests/test_patchloader_native.cpp.o.d"
  "/root/repo/tests/test_patchloader_vtal.cpp" "CMakeFiles/dsu_tests.dir/tests/test_patchloader_vtal.cpp.o" "gcc" "CMakeFiles/dsu_tests.dir/tests/test_patchloader_vtal.cpp.o.d"
  "/root/repo/tests/test_reactor_pool.cpp" "CMakeFiles/dsu_tests.dir/tests/test_reactor_pool.cpp.o" "gcc" "CMakeFiles/dsu_tests.dir/tests/test_reactor_pool.cpp.o.d"
  "/root/repo/tests/test_rollback.cpp" "CMakeFiles/dsu_tests.dir/tests/test_rollback.cpp.o" "gcc" "CMakeFiles/dsu_tests.dir/tests/test_rollback.cpp.o.d"
  "/root/repo/tests/test_runtime.cpp" "CMakeFiles/dsu_tests.dir/tests/test_runtime.cpp.o" "gcc" "CMakeFiles/dsu_tests.dir/tests/test_runtime.cpp.o.d"
  "/root/repo/tests/test_state.cpp" "CMakeFiles/dsu_tests.dir/tests/test_state.cpp.o" "gcc" "CMakeFiles/dsu_tests.dir/tests/test_state.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "CMakeFiles/dsu_tests.dir/tests/test_support.cpp.o" "gcc" "CMakeFiles/dsu_tests.dir/tests/test_support.cpp.o.d"
  "/root/repo/tests/test_tools.cpp" "CMakeFiles/dsu_tests.dir/tests/test_tools.cpp.o" "gcc" "CMakeFiles/dsu_tests.dir/tests/test_tools.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "CMakeFiles/dsu_tests.dir/tests/test_trace.cpp.o" "gcc" "CMakeFiles/dsu_tests.dir/tests/test_trace.cpp.o.d"
  "/root/repo/tests/test_types.cpp" "CMakeFiles/dsu_tests.dir/tests/test_types.cpp.o" "gcc" "CMakeFiles/dsu_tests.dir/tests/test_types.cpp.o.d"
  "/root/repo/tests/test_update_controller.cpp" "CMakeFiles/dsu_tests.dir/tests/test_update_controller.cpp.o" "gcc" "CMakeFiles/dsu_tests.dir/tests/test_update_controller.cpp.o.d"
  "/root/repo/tests/test_update_pipeline.cpp" "CMakeFiles/dsu_tests.dir/tests/test_update_pipeline.cpp.o" "gcc" "CMakeFiles/dsu_tests.dir/tests/test_update_pipeline.cpp.o.d"
  "/root/repo/tests/test_vtal_asm.cpp" "CMakeFiles/dsu_tests.dir/tests/test_vtal_asm.cpp.o" "gcc" "CMakeFiles/dsu_tests.dir/tests/test_vtal_asm.cpp.o.d"
  "/root/repo/tests/test_vtal_bytecode.cpp" "CMakeFiles/dsu_tests.dir/tests/test_vtal_bytecode.cpp.o" "gcc" "CMakeFiles/dsu_tests.dir/tests/test_vtal_bytecode.cpp.o.d"
  "/root/repo/tests/test_vtal_interp.cpp" "CMakeFiles/dsu_tests.dir/tests/test_vtal_interp.cpp.o" "gcc" "CMakeFiles/dsu_tests.dir/tests/test_vtal_interp.cpp.o.d"
  "/root/repo/tests/test_vtal_resolve.cpp" "CMakeFiles/dsu_tests.dir/tests/test_vtal_resolve.cpp.o" "gcc" "CMakeFiles/dsu_tests.dir/tests/test_vtal_resolve.cpp.o.d"
  "/root/repo/tests/test_vtal_verifier.cpp" "CMakeFiles/dsu_tests.dir/tests/test_vtal_verifier.cpp.o" "gcc" "CMakeFiles/dsu_tests.dir/tests/test_vtal_verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-noprof/CMakeFiles/dsu_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
