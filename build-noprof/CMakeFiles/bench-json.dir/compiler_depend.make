# Empty custom commands generated dependencies file for bench-json.
# This may be replaced when dependencies are built.
