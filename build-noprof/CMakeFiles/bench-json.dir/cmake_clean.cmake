file(REMOVE_RECURSE
  "CMakeFiles/bench-json"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/bench-json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
