# Empty dependencies file for dsu-updatectl.
# This may be replaced when dependencies are built.
