file(REMOVE_RECURSE
  "CMakeFiles/dsu-updatectl.dir/tools/dsu-updatectl.cpp.o"
  "CMakeFiles/dsu-updatectl.dir/tools/dsu-updatectl.cpp.o.d"
  "tools/dsu-updatectl"
  "tools/dsu-updatectl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsu-updatectl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
