# Empty dependencies file for bench_indirection.
# This may be replaced when dependencies are built.
