file(REMOVE_RECURSE
  "CMakeFiles/bench_indirection.dir/bench/bench_indirection.cpp.o"
  "CMakeFiles/bench_indirection.dir/bench/bench_indirection.cpp.o.d"
  "bench/bench_indirection"
  "bench/bench_indirection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_indirection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
