file(REMOVE_RECURSE
  "CMakeFiles/bench_update_duration.dir/bench/bench_update_duration.cpp.o"
  "CMakeFiles/bench_update_duration.dir/bench/bench_update_duration.cpp.o.d"
  "bench/bench_update_duration"
  "bench/bench_update_duration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_update_duration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
