# Empty compiler generated dependencies file for bench_update_duration.
# This may be replaced when dependencies are built.
