file(REMOVE_RECURSE
  "CMakeFiles/dsu_lint_tests.dir/tests/lint/test_lint.cpp.o"
  "CMakeFiles/dsu_lint_tests.dir/tests/lint/test_lint.cpp.o.d"
  "dsu_lint_tests"
  "dsu_lint_tests.pdb"
  "dsu_lint_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsu_lint_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
