# Empty compiler generated dependencies file for dsu_lint_tests.
# This may be replaced when dependencies are built.
