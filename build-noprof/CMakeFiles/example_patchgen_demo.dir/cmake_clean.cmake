file(REMOVE_RECURSE
  "CMakeFiles/example_patchgen_demo.dir/examples/patchgen_demo.cpp.o"
  "CMakeFiles/example_patchgen_demo.dir/examples/patchgen_demo.cpp.o.d"
  "examples/example_patchgen_demo"
  "examples/example_patchgen_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_patchgen_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
