# Empty dependencies file for example_patchgen_demo.
# This may be replaced when dependencies are built.
