file(REMOVE_RECURSE
  "CMakeFiles/dsu_rollout_tests.dir/tests/test_rollout.cpp.o"
  "CMakeFiles/dsu_rollout_tests.dir/tests/test_rollout.cpp.o.d"
  "dsu_rollout_tests"
  "dsu_rollout_tests.pdb"
  "dsu_rollout_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsu_rollout_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
