# Empty dependencies file for dsu_rollout_tests.
# This may be replaced when dependencies are built.
