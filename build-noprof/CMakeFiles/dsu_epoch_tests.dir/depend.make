# Empty dependencies file for dsu_epoch_tests.
# This may be replaced when dependencies are built.
