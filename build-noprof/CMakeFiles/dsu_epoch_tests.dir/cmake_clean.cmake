file(REMOVE_RECURSE
  "CMakeFiles/dsu_epoch_tests.dir/tests/test_epoch.cpp.o"
  "CMakeFiles/dsu_epoch_tests.dir/tests/test_epoch.cpp.o.d"
  "CMakeFiles/dsu_epoch_tests.dir/tests/test_rolling_update.cpp.o"
  "CMakeFiles/dsu_epoch_tests.dir/tests/test_rolling_update.cpp.o.d"
  "dsu_epoch_tests"
  "dsu_epoch_tests.pdb"
  "dsu_epoch_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsu_epoch_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
