# Empty dependencies file for patch_p1_parsefix.
# This may be replaced when dependencies are built.
