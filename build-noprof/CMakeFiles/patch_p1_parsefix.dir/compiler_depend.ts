# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for patch_p1_parsefix.
