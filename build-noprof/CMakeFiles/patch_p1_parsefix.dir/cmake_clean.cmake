file(REMOVE_RECURSE
  "CMakeFiles/patch_p1_parsefix.dir/patches/p1_parsefix.cpp.o"
  "CMakeFiles/patch_p1_parsefix.dir/patches/p1_parsefix.cpp.o.d"
  "patches/p1_parsefix.pdb"
  "patches/p1_parsefix.so"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patch_p1_parsefix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
