# Empty dependencies file for bench_vtal_interp.
# This may be replaced when dependencies are built.
