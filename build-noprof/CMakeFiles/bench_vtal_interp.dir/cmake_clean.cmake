file(REMOVE_RECURSE
  "CMakeFiles/bench_vtal_interp.dir/bench/bench_vtal_interp.cpp.o"
  "CMakeFiles/bench_vtal_interp.dir/bench/bench_vtal_interp.cpp.o.d"
  "bench/bench_vtal_interp"
  "bench/bench_vtal_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vtal_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
