file(REMOVE_RECURSE
  "CMakeFiles/bench_rollout.dir/bench/bench_rollout.cpp.o"
  "CMakeFiles/bench_rollout.dir/bench/bench_rollout.cpp.o.d"
  "bench/bench_rollout"
  "bench/bench_rollout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rollout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
