# Empty compiler generated dependencies file for bench_rollout.
# This may be replaced when dependencies are built.
