file(REMOVE_RECURSE
  "CMakeFiles/bench_state_transform.dir/bench/bench_state_transform.cpp.o"
  "CMakeFiles/bench_state_transform.dir/bench/bench_state_transform.cpp.o.d"
  "bench/bench_state_transform"
  "bench/bench_state_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_state_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
