# Empty compiler generated dependencies file for bench_state_transform.
# This may be replaced when dependencies are built.
