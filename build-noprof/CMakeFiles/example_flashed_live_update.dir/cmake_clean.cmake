file(REMOVE_RECURSE
  "CMakeFiles/example_flashed_live_update.dir/examples/flashed_live_update.cpp.o"
  "CMakeFiles/example_flashed_live_update.dir/examples/flashed_live_update.cpp.o.d"
  "examples/example_flashed_live_update"
  "examples/example_flashed_live_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_flashed_live_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
