# Empty compiler generated dependencies file for example_flashed_live_update.
# This may be replaced when dependencies are built.
