file(REMOVE_RECURSE
  "CMakeFiles/bench_vtal_verify.dir/bench/bench_vtal_verify.cpp.o"
  "CMakeFiles/bench_vtal_verify.dir/bench/bench_vtal_verify.cpp.o.d"
  "bench/bench_vtal_verify"
  "bench/bench_vtal_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vtal_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
