# Empty dependencies file for bench_vtal_verify.
# This may be replaced when dependencies are built.
