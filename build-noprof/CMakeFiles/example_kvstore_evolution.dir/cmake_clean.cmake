file(REMOVE_RECURSE
  "CMakeFiles/example_kvstore_evolution.dir/examples/kvstore_evolution.cpp.o"
  "CMakeFiles/example_kvstore_evolution.dir/examples/kvstore_evolution.cpp.o.d"
  "examples/example_kvstore_evolution"
  "examples/example_kvstore_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_kvstore_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
