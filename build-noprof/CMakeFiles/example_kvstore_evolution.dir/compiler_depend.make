# Empty compiler generated dependencies file for example_kvstore_evolution.
# This may be replaced when dependencies are built.
