file(REMOVE_RECURSE
  "CMakeFiles/patch_badpatch_type_mismatch.dir/patches/badpatch_type_mismatch.cpp.o"
  "CMakeFiles/patch_badpatch_type_mismatch.dir/patches/badpatch_type_mismatch.cpp.o.d"
  "patches/badpatch_type_mismatch.pdb"
  "patches/badpatch_type_mismatch.so"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patch_badpatch_type_mismatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
