
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/patches/badpatch_type_mismatch.cpp" "CMakeFiles/patch_badpatch_type_mismatch.dir/patches/badpatch_type_mismatch.cpp.o" "gcc" "CMakeFiles/patch_badpatch_type_mismatch.dir/patches/badpatch_type_mismatch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
