# Empty dependencies file for patch_badpatch_type_mismatch.
# This may be replaced when dependencies are built.
