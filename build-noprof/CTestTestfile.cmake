# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-noprof
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-noprof/dsu_tests[1]_include.cmake")
include("/root/repo/build-noprof/dsu_epoch_tests[1]_include.cmake")
include("/root/repo/build-noprof/dsu_rollout_tests[1]_include.cmake")
include("/root/repo/build-noprof/dsu_persist_tests[1]_include.cmake")
include("/root/repo/build-noprof/dsu_lint_tests[1]_include.cmake")
add_test(bench_code_size_smoke "/root/repo/build-noprof/bench/bench_code_size")
set_tests_properties(bench_code_size_smoke PROPERTIES  LABELS "bench" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;181;add_test;/root/repo/CMakeLists.txt;0;")
add_test(bench_patch_generation_smoke "/root/repo/build-noprof/bench/bench_patch_generation" "256" "2")
set_tests_properties(bench_patch_generation_smoke PROPERTIES  LABELS "bench" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;182;add_test;/root/repo/CMakeLists.txt;0;")
add_test(bench_state_transform_smoke "/root/repo/build-noprof/bench/bench_state_transform" "2")
set_tests_properties(bench_state_transform_smoke PROPERTIES  LABELS "bench" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;184;add_test;/root/repo/CMakeLists.txt;0;")
add_test(bench_update_duration_smoke "/root/repo/build-noprof/bench/bench_update_duration" "2" "8")
set_tests_properties(bench_update_duration_smoke PROPERTIES  LABELS "bench" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;185;add_test;/root/repo/CMakeLists.txt;0;")
add_test(bench_rollout_smoke "/root/repo/build-noprof/bench/bench_rollout" "1")
set_tests_properties(bench_rollout_smoke PROPERTIES  LABELS "bench" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;187;add_test;/root/repo/CMakeLists.txt;0;")
add_test(bench_journal_smoke "/root/repo/build-noprof/bench/bench_journal" "--appends" "64" "--chains" "4")
set_tests_properties(bench_journal_smoke PROPERTIES  LABELS "bench" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;188;add_test;/root/repo/CMakeLists.txt;0;")
add_test(bench_flashed_throughput_full "/root/repo/build-noprof/bench/bench_flashed_throughput" "200")
set_tests_properties(bench_flashed_throughput_full PROPERTIES  DISABLED "TRUE" LABELS "bench;slow" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;192;add_test;/root/repo/CMakeLists.txt;0;")
add_test(bench_update_duration_full "/root/repo/build-noprof/bench/bench_update_duration" "30" "64")
set_tests_properties(bench_update_duration_full PROPERTIES  DISABLED "TRUE" LABELS "bench;slow" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;194;add_test;/root/repo/CMakeLists.txt;0;")
