//===- bench/bench_vtal_verify.cpp - Experiment E7 ------------*- C++ -*-===//
///
/// E7: verification throughput vs patch code size.  In the PLDI 2001
/// measurements, verifying the patch's TAL code is a principal component
/// of update time; the analogous cost here is VTAL verification.  The
/// harness generates well-typed modules of increasing size and measures
/// verify time, decode time, and instructions/second.
///
//===----------------------------------------------------------------------===//

#include "analysis/PatchAnalyzer.h"
#include "link/SymbolTable.h"
#include "patch/Patch.h"
#include "runtime/UpdateableRegistry.h"
#include "state/StateCell.h"
#include "state/Transform.h"
#include "support/StringUtil.h"
#include "types/Type.h"
#include "vtal/Assembler.h"
#include "vtal/Bytecode.h"
#include "vtal/Verifier.h"

#include <benchmark/benchmark.h>
#include <memory>

using namespace dsu;
using namespace dsu::vtal;

namespace {

/// A module with \p Funcs functions, each a ~26-instruction loop with
/// joins (exercising the dataflow part of the verifier, not just the
/// straight-line fast path).
Module synthesize(unsigned Funcs) {
  std::string Src = "module verify_bench\n";
  for (unsigned F = 0; F != Funcs; ++F) {
    Src += formatString("func fn_%u (n: int, flag: bool) -> int {\n", F);
    Src += "  locals (acc: int, i: int)\n";
    Src += "  push.i 0\n  store acc\n  push.i 0\n  store i\n";
    Src += "  load flag\n  brif fast\n";
    Src += "head:\n  load i\n  load n\n  ge\n  brif out\n";
    Src += "  load acc\n  load i\n  add\n  store acc\n";
    Src += "  load i\n  push.i 1\n  add\n  store i\n  br head\n";
    Src += "fast:\n  load n\n  push.i 2\n  mul\n  store acc\n  br join\n";
    Src += "out:\njoin:\n  load acc\n  ret\n}\n";
  }
  return cantFail(assemble(Src), "synthesize");
}

void BM_Verify(benchmark::State &State) {
  Module M = synthesize(static_cast<unsigned>(State.range(0)));
  size_t Insts = M.totalInstructions();
  for (auto _ : State) {
    VerifyStats Stats;
    Error E = verifyModule(M, &Stats);
    if (E)
      State.SkipWithError(E.str().c_str());
    benchmark::DoNotOptimize(Stats.InstructionsChecked);
  }
  State.counters["instructions"] =
      benchmark::Counter(static_cast<double>(Insts));
  State.counters["inst/s"] = benchmark::Counter(
      static_cast<double>(Insts), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Verify)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_DecodeAndVerify(benchmark::State &State) {
  // The full patch-acceptance path: bytes -> decode -> verify.
  Module M = synthesize(static_cast<unsigned>(State.range(0)));
  std::string Bytes = encodeModule(M);
  for (auto _ : State) {
    Expected<Module> Decoded = decodeModule(Bytes);
    if (!Decoded)
      State.SkipWithError("decode failed");
    Error E = verifyModule(*Decoded);
    if (E)
      State.SkipWithError(E.str().c_str());
  }
  State.counters["bytes/s"] = benchmark::Counter(
      static_cast<double>(Bytes.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_DecodeAndVerify)->Arg(4)->Arg(64)->Arg(256);

void BM_Assemble(benchmark::State &State) {
  // Patch build-side cost, for comparison.
  unsigned Funcs = static_cast<unsigned>(State.range(0));
  std::string Src;
  {
    Module M = synthesize(Funcs);
    (void)M;
  }
  // Rebuild the source text once (synthesize assembles internally).
  Src = "module verify_bench\n";
  for (unsigned F = 0; F != Funcs; ++F) {
    Src += formatString("func fn_%u (n: int) -> int {\n", F);
    Src += "  load n\n  push.i 3\n  mul\n  ret\n}\n";
  }
  for (auto _ : State) {
    Expected<Module> M = assemble(Src);
    if (!M)
      State.SkipWithError("assemble failed");
    benchmark::DoNotOptimize(M->Functions.size());
  }
}
BENCHMARK(BM_Assemble)->Arg(4)->Arg(64);

void BM_Analyze(benchmark::State &State) {
  // The update-safety analyzer over the same modules BM_Verify checks:
  // the staging pipeline runs both back to back, and the acceptance
  // budget for the analyzer is < 10% of verify time.  The loop-heavy
  // synthesized functions are its worst case (every back edge gets the
  // counted-loop pattern match).
  Patch P;
  P.Id = "bench-analyze";
  P.VtalMod =
      std::make_shared<Module>(synthesize(static_cast<unsigned>(State.range(0))));
  TypeContext Types;
  TransformerRegistry Transformers;
  SymbolTable Exports;
  UpdateableRegistry Updateables;
  StateRegistry StateReg;
  analysis::AnalyzerEnv Env{Types, Transformers, Exports, Updateables,
                            StateReg};
  for (auto _ : State) {
    analysis::AnalysisReport R = analysis::analyzePatch(P, Env);
    benchmark::DoNotOptimize(R.Findings.size());
  }
  State.counters["inst/s"] = benchmark::Counter(
      static_cast<double>(P.VtalMod->totalInstructions()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Analyze)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

} // namespace

BENCHMARK_MAIN();
