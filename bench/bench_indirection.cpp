//===- bench/bench_indirection.cpp - Experiment E1 ------------*- C++ -*-===//
///
/// E1: the steady-state cost of being updateable — the price of calling
/// through the rebindable indirection instead of a direct call.  The
/// PLDI 2001 paper reports this overhead as negligible on the macro
/// benchmark; this microbenchmark isolates it, and ablates the design
/// choice called out in DESIGN.md §7 (atomic slot vs. a mutex-guarded
/// strawman).
///
/// Rows:
///   direct            plain C++ call (the non-updateable baseline)
///   updateable        Updateable<Sig> with activation tracking (default)
///   untracked         indirection only (isolates tracking cost)
///   mutex_strawman    take a lock per call (the design we did not pick)
///   std_function      type-erased std::function (common C++ alternative)
///
//===----------------------------------------------------------------------===//

#include "runtime/Updateable.h"

#include <benchmark/benchmark.h>

#include <functional>
#include <mutex>
#include <string_view>
#include <vector>

using namespace dsu;

namespace {

int64_t work(int64_t A, int64_t B) { return A * 31 + B; }

std::string strWork(std::string S) {
  S += 'x';
  return S;
}

struct Env {
  TypeContext Ctx;
  UpdateableRegistry Reg;
  Updateable<int64_t(int64_t, int64_t)> Work;
  Updateable<std::string(std::string)> StrWork;

  Env() {
    Work = cantFail(defineUpdateable(Reg, Ctx, "bench.work", &work));
    StrWork =
        cantFail(defineUpdateable(Reg, Ctx, "bench.strwork", &strWork));
  }
};

Env &env() {
  static Env E;
  return E;
}

void BM_DirectCall(benchmark::State &State) {
  int64_t Acc = 0;
  for (auto _ : State) {
    Acc = work(Acc, 7);
    benchmark::DoNotOptimize(Acc);
  }
}
BENCHMARK(BM_DirectCall);

void BM_DirectCallViaPointer(benchmark::State &State) {
  // Defeats inlining: the honest "compiled direct call" baseline.
  auto Fn = &work;
  benchmark::DoNotOptimize(Fn);
  int64_t Acc = 0;
  for (auto _ : State) {
    Acc = Fn(Acc, 7);
    benchmark::DoNotOptimize(Acc);
  }
}
BENCHMARK(BM_DirectCallViaPointer);

void BM_Updateable(benchmark::State &State) {
  auto &H = env().Work;
  int64_t Acc = 0;
  for (auto _ : State) {
    Acc = H(Acc, 7);
    benchmark::DoNotOptimize(Acc);
  }
}
BENCHMARK(BM_Updateable);

void BM_UpdateableUntracked(benchmark::State &State) {
  auto &H = env().Work;
  int64_t Acc = 0;
  for (auto _ : State) {
    Acc = H.callUntracked(Acc, 7);
    benchmark::DoNotOptimize(Acc);
  }
}
BENCHMARK(BM_UpdateableUntracked);

void BM_MutexStrawman(benchmark::State &State) {
  // The ablation: what per-call locking would have cost.
  static std::mutex Lock;
  static int64_t (*Fn)(int64_t, int64_t) = &work;
  int64_t Acc = 0;
  for (auto _ : State) {
    std::lock_guard<std::mutex> G(Lock);
    Acc = Fn(Acc, 7);
    benchmark::DoNotOptimize(Acc);
  }
}
BENCHMARK(BM_MutexStrawman);

void BM_StdFunction(benchmark::State &State) {
  static std::function<int64_t(int64_t, int64_t)> Fn = &work;
  benchmark::DoNotOptimize(Fn);
  int64_t Acc = 0;
  for (auto _ : State) {
    Acc = Fn(Acc, 7);
    benchmark::DoNotOptimize(Acc);
  }
}
BENCHMARK(BM_StdFunction);

// String-typed rows: the FlashEd pipeline's realistic payload shape,
// where argument marshalling dominates and indirection disappears.
void BM_DirectCallString(benchmark::State &State) {
  auto Fn = &strWork;
  benchmark::DoNotOptimize(Fn);
  for (auto _ : State) {
    std::string R = Fn("GET /doc.html");
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_DirectCallString);

void BM_UpdateableString(benchmark::State &State) {
  auto &H = env().StrWork;
  for (auto _ : State) {
    std::string R = H("GET /doc.html");
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_UpdateableString);

} // namespace

// BENCHMARK_MAIN(), plus a --json convenience flag that maps to Google
// Benchmark's JSON reporter so CI can collect machine-readable results
// with the same flag every bench binary understands.
int main(int argc, char **argv) {
  static char JsonFlag[] = "--benchmark_format=json";
  std::vector<char *> Args(argv, argv + argc);
  for (char *&A : Args)
    if (std::string_view(A) == "--json")
      A = JsonFlag;
  int Argc = static_cast<int>(Args.size());
  ::benchmark::Initialize(&Argc, Args.data());
  if (::benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
