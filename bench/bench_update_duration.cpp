//===- bench/bench_update_duration.cpp - Experiment E3 --------*- C++ -*-===//
///
/// E3: the paper's per-patch update-time table — for each patch in the
/// FlashEd series, the time to apply it broken into verify / link /
/// state-transform, plus the artifact size.  The paper reports totals
/// well under a second per patch, dominated by verification for
/// code-heavy patches and by the transformer for state-heavy ones.
///
/// Each sample applies the full P1..P5 series to a fresh FlashEd with a
/// warmed cache; the native mathlib patch and a VTAL patch are appended
/// so every loading path (in-process / dlopen / verified VTAL) appears
/// in the same table.
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "flashed/App.h"
#include "flashed/Patches.h"
#include "support/Timer.h"

#include <cstdio>
#include <map>
#include <string>
#include <vector>

using namespace dsu;
using namespace dsu::flashed;

namespace {

int64_t fibV1(int64_t N) { return N < 2 ? N : fibV1(N - 1) + fibV1(N - 2); }
int64_t scaleV1(int64_t X) { return X * 1000; }
int64_t tuneV1(int64_t X) { return X; }

const char *VtalTunePatch = R"dsu(
(patch
  (id "P7-tune-vtal")
  (description "verified VTAL replacement of the tuning function")
  (provides (fn (name "math.tune") (type "fn(int) -> int")
                (vtal-fn "tune")))
  (vtal-module
"module tune_mod
func tune (x: int) -> int {
  locals (acc: int, i: int)
  push.i 0
  store acc
  push.i 0
  store i
loop:
  load i
  push.i 16
  ge
  brif done
  load acc
  load x
  add
  store acc
  load i
  push.i 1
  add
  store i
  br loop
done:
  load acc
  ret
}"))
)dsu";

struct Agg {
  RunningStat Verify, Link, Transform, Total;
  size_t Bytes = 0;
  size_t Migrated = 0;
  std::string Kind;
};

void runSeries(std::map<std::string, Agg> &Table,
               std::vector<std::string> &Order, unsigned CacheEntries) {
  Runtime RT;
  FlashedApp App(RT);
  DocStore Docs;
  Docs.fillSynthetic(CacheEntries, 2048);
  cantFail(App.init(std::move(Docs)), "init");

  // Warm the cache so P3's transformer has live state to migrate.
  for (unsigned I = 0; I != CacheEntries; ++I)
    App.handle("GET /doc" + std::to_string(I) + ".html HTTP/1.0\r\n\r\n");

  cantFail(RT.defineUpdateable("math.fib", &fibV1), "fib");
  cantFail(RT.defineUpdateable("math.scale", &scaleV1), "scale");
  cantFail(RT.defineUpdateable("math.tune", &tuneV1), "tune");
  cantFail(RT.defineNamedType({"counter", 1}, RT.types().intType()),
           "counter type");
  cantFail(RT.defineState("math.counter",
                          RT.types().namedType("counter", 1),
                          std::make_shared<int64_t>(1)),
           "counter cell");

  struct Job {
    std::string Kind;
    Patch P;
  };
  std::vector<Job> Jobs;
  Jobs.push_back({"bugfix (code only)", cantFail(makePatchP1(App), "P1")});
  Jobs.push_back({"feature add", cantFail(makePatchP2(App), "P2")});
  Jobs.push_back({"type change + xform", cantFail(makePatchP3(App), "P3")});
  Jobs.push_back({"signature change (shim)",
                  cantFail(makePatchP4(App), "P4")});
  Jobs.push_back({"compound subsystem", cantFail(makePatchP5(App), "P5")});
  Jobs.push_back(
      {"native dlopen + xform",
       cantFail(loadNativePatch(RT.types(),
                                std::string(DSU_PATCH_DIR) +
                                    "/mathlib_v2.so"),
                "mathlib")});
  Jobs.push_back({"verified VTAL",
                  cantFail(loadVtalPatch(RT.types(), RT.exports(),
                                         VtalTunePatch),
                           "vtal")});

  for (Job &J : Jobs) {
    std::string Id = J.P.Id;
    cantFail(RT.applyNow(std::move(J.P)), Id.c_str());
    UpdateRecord Rec = RT.updateLog().back();
    Agg &A = Table[Id];
    if (A.Kind.empty()) {
      A.Kind = J.Kind;
      Order.push_back(Id);
    }
    A.Verify.addSample(Rec.VerifyMs);
    A.Link.addSample(Rec.LinkMs);
    A.Transform.addSample(Rec.TransformMs);
    A.Total.addSample(Rec.TotalMs);
    A.Bytes = Rec.CodeBytes;
    A.Migrated = Rec.CellsMigrated;
  }
}

} // namespace

int main(int argc, char **argv) {
  unsigned Samples = 30;
  unsigned CacheEntries = 64;
  if (argc > 1)
    Samples = static_cast<unsigned>(std::atoi(argv[1]));
  if (argc > 2)
    CacheEntries = static_cast<unsigned>(std::atoi(argv[2]));

  std::map<std::string, Agg> Table;
  std::vector<std::string> Order;
  for (unsigned I = 0; I != Samples; ++I)
    runSeries(Table, Order, CacheEntries);

  std::printf("E3: dynamic update duration per patch (%u samples, warmed "
              "cache: %u docs)\n",
              Samples, CacheEntries);
  std::printf("reproduces: PLDI'01 per-patch update time table\n\n");
  std::printf("%-26s %-24s %8s %9s %9s %9s %9s %6s\n", "patch", "kind",
              "bytes", "verify", "link", "xform", "total(ms)", "cells");
  std::printf("%.*s\n", 110,
              "--------------------------------------------------------"
              "--------------------------------------------------------");
  for (const std::string &Id : Order) {
    const Agg &A = Table[Id];
    std::printf("%-26s %-24s %8zu %9.3f %9.3f %9.3f %9.3f %6zu\n",
                Id.c_str(), A.Kind.c_str(), A.Bytes, A.Verify.mean(),
                A.Link.mean(), A.Transform.mean(), A.Total.mean(),
                A.Migrated);
  }
  std::printf("\nshape check (paper): every patch applies in milliseconds "
              "(well under the\npaper's sub-second bound); verification "
              "cost appears only on the verified\n(VTAL) patch; transform "
              "time appears only on the state-migrating patches.\n");
  return 0;
}
