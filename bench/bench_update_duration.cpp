//===- bench/bench_update_duration.cpp - Experiment E3 --------*- C++ -*-===//
///
/// E3: the paper's per-patch update-time table — for each patch in the
/// FlashEd series, the time to apply it, broken into the transactional
/// split this repo's update API exposes:
///
///   stage (any thread):   verify + link prepare + state-transform build
///   commit (update point): generation-validated swaps + binding swings
///
/// The commit column is the serving *pause*; the paper reports totals
/// well under a second per patch, and the transaction API shrinks the
/// pause to a small fraction of even that (the acceptance bar tracked in
/// BENCH_update.json: commit at least 5x smaller than stage+commit for
/// the P1..P3 FlashEd patches).
///
/// Each sample applies the full P1..P5 series to a fresh FlashEd with a
/// warmed cache; the native mathlib patch and a VTAL patch are appended
/// so every loading path (in-process / dlopen / verified VTAL) appears
/// in the same table.
///
/// A second table reports the cross-worker update barrier: a
/// state-migrating patch committed repeatedly into a live reactor pool
/// (1/2/4 workers) under keep-alive load, with the per-worker park
/// duration — the whole per-worker cost of one dynamic update on the
/// multi-core serving plane — aggregated from the pool's pause
/// histograms.  A third table commits the code-only P1 patch into the
/// same pool: those land as *rolling* commits through the epoch
/// subsystem — zero barrier rounds, zero parks — so the only cost
/// anywhere is the committing worker's own swing.
///
/// Usage: bench_update_duration [samples] [cache-entries] [--json]
///        [--out FILE]
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "flashed/App.h"
#include "flashed/Client.h"
#include "flashed/Patches.h"
#include "net/ReactorPool.h"
#include "patch/PatchBuilder.h"
#include "support/Timer.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

using namespace dsu;
using namespace dsu::flashed;

namespace {

int64_t fibV1(int64_t N) { return N < 2 ? N : fibV1(N - 1) + fibV1(N - 2); }
int64_t scaleV1(int64_t X) { return X * 1000; }
int64_t tuneV1(int64_t X) { return X; }

const char *VtalTunePatch = R"dsu(
(patch
  (id "P7-tune-vtal")
  (description "verified VTAL replacement of the tuning function")
  (provides (fn (name "math.tune") (type "fn(int) -> int")
                (vtal-fn "tune")))
  (vtal-module
"module tune_mod
func tune (x: int) -> int {
  locals (acc: int, i: int)
  push.i 0
  store acc
  push.i 0
  store i
loop:
  load i
  push.i 16
  ge
  brif done
  load acc
  load x
  add
  store acc
  load i
  push.i 1
  add
  store i
  br loop
done:
  load acc
  ret
}"))
)dsu";

struct Agg {
  RunningStat Stage, Commit, Verify, Prepare, Build, Total;
  size_t Bytes = 0;
  size_t Migrated = 0;
  std::string Kind;
};

void runSeries(std::map<std::string, Agg> &Table,
               std::vector<std::string> &Order, unsigned CacheEntries) {
  Runtime RT;
  FlashedApp App(RT);
  DocStore Docs;
  Docs.fillSynthetic(CacheEntries, 2048);
  cantFail(App.init(std::move(Docs)), "init");

  // Warm the cache so P3's transformer has live state to migrate.
  for (unsigned I = 0; I != CacheEntries; ++I)
    App.handle("GET /doc" + std::to_string(I) + ".html HTTP/1.0\r\n\r\n");

  cantFail(RT.defineUpdateable("math.fib", &fibV1), "fib");
  cantFail(RT.defineUpdateable("math.scale", &scaleV1), "scale");
  cantFail(RT.defineUpdateable("math.tune", &tuneV1), "tune");
  cantFail(RT.defineNamedType({"counter", 1}, RT.types().intType()),
           "counter type");
  cantFail(RT.defineState("math.counter",
                          RT.types().namedType("counter", 1),
                          std::make_shared<int64_t>(1)),
           "counter cell");

  // Each job produces its patch the way the staging side really does:
  // in-process construction for P1..P5 (what an embedded program hands
  // the controller), dlopen for the native artifact, parse + assemble
  // for the VTAL artifact.  All of it runs off the update point, so it
  // is counted as stage time next to verify/prepare/build.
  struct Job {
    std::string Kind;
    std::function<Expected<Patch>()> Make;
  };
  std::vector<Job> Jobs;
  Jobs.push_back({"bugfix (code only)", [&] { return makePatchP1(App); }});
  Jobs.push_back({"feature add", [&] { return makePatchP2(App); }});
  Jobs.push_back({"type change + xform", [&] { return makePatchP3(App); }});
  Jobs.push_back(
      {"signature change (shim)", [&] { return makePatchP4(App); }});
  Jobs.push_back({"compound subsystem", [&] { return makePatchP5(App); }});
  Jobs.push_back({"native dlopen + xform", [&] {
                    return loadNativePatch(RT.types(),
                                           std::string(DSU_PATCH_DIR) +
                                               "/mathlib_v2.so");
                  }});
  Jobs.push_back({"verified VTAL", [&] {
                    return loadVtalPatch(RT.types(), RT.exports(),
                                         VtalTunePatch);
                  }});

  for (Job &J : Jobs) {
    Timer TLoad;
    Patch P = cantFail(J.Make(), J.Kind.c_str());
    double LoadMs = TLoad.elapsedMs();
    std::string Id = P.Id;
    // The transactional split: stage on this thread (in a real server,
    // the controller's worker), commit as the update point would.
    StagedUpdate U = cantFail(RT.stage(std::move(P)), Id.c_str());
    cantFail(U.commit(), Id.c_str());
    UpdateRecord Rec = RT.updateLog().back();
    Agg &A = Table[Id];
    if (A.Kind.empty()) {
      A.Kind = J.Kind;
      Order.push_back(Id);
    }
    A.Stage.addSample(LoadMs + Rec.StageMs);
    A.Commit.addSample(Rec.CommitMs);
    A.Verify.addSample(Rec.VerifyMs);
    A.Prepare.addSample(Rec.PrepareMs);
    A.Build.addSample(Rec.BuildMs);
    A.Total.addSample(LoadMs + Rec.TotalMs);
    A.Bytes = Rec.CodeBytes;
    A.Migrated = Rec.CellsMigrated;
  }
}

/// Per-worker-count outcome of one live-pool commit measurement.
struct PoolCommitResult {
  unsigned Workers = 0;
  unsigned Commits = 0;
  uint64_t Pauses = 0;       ///< parks recorded across all workers
  double MeanPauseMs = 0;    ///< mean park duration
  double MaxPauseMs = 0;     ///< worst single park on any worker
  uint64_t BarrierRounds = 0;
  uint64_t RollingCommits = 0;
  double MeanCommitMs = 0; ///< committer's swing cost (update records)
  double MaxCommitMs = 0;
};

/// A repeatable state-migrating patch: %bench_counter@V -> @V+1 with an
/// identity transformer, forcing the cross-worker barrier.  (The
/// code-only P1 patch now commits *rolling*, so the barrier table needs
/// a patch that genuinely migrates state.)
Patch makeCounterBumpPatch(Runtime &RT, uint32_t FromV) {
  return cantFail(makeIdentityBumpPatch(
                      RT.types(), VersionedName{"bench_counter", FromV},
                      RT.types().intType()),
                  "counter bump");
}

/// Commits \p Commits patches into a \p Workers-wide reactor pool while
/// keep-alive clients keep loading, then reports the pause histogram
/// totals and the committers' swing costs.  \p Rolling selects the
/// patch class: code-only P1 replacements (rolling commits, the pause
/// table should be empty) or counter-bump migrations (barrier commits,
/// every worker parks once per round).
PoolCommitResult runPoolCommits(unsigned Workers, unsigned Commits,
                                bool Rolling) {
  using namespace dsu::net;
  Runtime RT;
  FlashedApp App(RT);
  DocStore Docs;
  Docs.fillSynthetic(8, 2048);
  cantFail(App.init(std::move(Docs)), "init");
  if (!Rolling) {
    cantFail(RT.defineNamedType({"bench_counter", 1},
                                RT.types().intType()),
             "counter type");
    cantFail(RT.defineState("bench.counter",
                            RT.types().namedType("bench_counter", 1),
                            std::make_shared<int64_t>(1)),
             "counter cell");
  }

  PoolOptions O;
  O.Workers = Workers;
  O.PollTimeoutMs = 2;
  // Spread workers over cores where there are cores to spread over
  // (graceful no-op on a 1-core container, reported as cpu -1).
  O.PinWorkers = true;
  ReactorPool Pool(
      [&App](const RequestHead &Head, std::string_view Raw,
             std::string &Out, SharedBody &Body) {
        App.handleInto(Head, Raw, Out, Body);
      },
      O);
  Pool.setUpdateRuntime(RT);
  cantFail(Pool.start(), "pool start");

  // Background load: the commits must land between requests of live
  // persistent connections, not on an idle pool.
  std::atomic<bool> Stop{false};
  std::vector<std::thread> Loaders;
  for (unsigned T = 0; T != Workers + 1; ++T)
    Loaders.emplace_back([&] {
      KeepAliveClient C;
      if (C.connectTo(Pool.port()))
        return;
      unsigned I = 0;
      while (!Stop.load()) {
        if (!C.get("/doc" + std::to_string(I++ % 8) + ".html"))
          break;
      }
    });

  for (unsigned I = 0; I != Commits; ++I) {
    Patch P = Rolling ? cantFail(makePatchP1(App), "P1")
                      : makeCounterBumpPatch(RT, I + 1);
    RT.requestUpdate(std::move(P));
    Pool.wake();
    for (int Spin = 0; Spin != 5000 && RT.updatesApplied() < I + 1;
         ++Spin)
      std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  Stop.store(true);
  for (std::thread &T : Loaders)
    T.join();
  // Read the histograms only after stop() has joined the workers: the
  // non-committer workers of the final round record their park on the
  // way out, and the stats survive stop (reactors are retained).
  Pool.stop();
  PoolCommitResult R;
  R.Workers = Workers;
  R.Commits = Commits;
  R.BarrierRounds = Pool.barrierRounds();
  R.RollingCommits = RT.rollingCommits();
  uint64_t TotalUs = 0, MaxUs = 0;
  for (unsigned W = 0; W != Pool.workers(); ++W) {
    const WorkerStats &S = Pool.workerStats(W);
    R.Pauses += S.Pauses.load();
    TotalUs += S.PauseTotalUs.load();
    uint64_t M = S.PauseMaxUs.load();
    if (M > MaxUs)
      MaxUs = M;
  }
  R.MeanPauseMs = R.Pauses ? TotalUs / 1e3 / R.Pauses : 0;
  R.MaxPauseMs = MaxUs / 1e3;
  RunningStat CommitMs;
  for (const UpdateRecord &Rec : RT.updateLog())
    if (Rec.Succeeded) {
      CommitMs.addSample(Rec.CommitMs);
      if (Rec.CommitMs > R.MaxCommitMs)
        R.MaxCommitMs = Rec.CommitMs;
    }
  R.MeanCommitMs = CommitMs.mean();
  return R;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Samples = 30;
  unsigned CacheEntries = 64;
  bool Json = false;
  const char *OutPath = nullptr;
  unsigned Positional = 0;
  for (int I = 1; I != argc; ++I) {
    if (std::strcmp(argv[I], "--json") == 0)
      Json = true;
    else if (std::strcmp(argv[I], "--out") == 0 && I + 1 < argc)
      OutPath = argv[++I];
    else if (Positional++ == 0)
      Samples = static_cast<unsigned>(std::atoi(argv[I]));
    else
      CacheEntries = static_cast<unsigned>(std::atoi(argv[I]));
  }

  FILE *Out = stdout;
  if (OutPath) {
    Out = std::fopen(OutPath, "w");
    if (!Out) {
      std::fprintf(stderr, "cannot open %s\n", OutPath);
      return 1;
    }
  }

  std::map<std::string, Agg> Table;
  std::vector<std::string> Order;
  for (unsigned I = 0; I != Samples; ++I)
    runSeries(Table, Order, CacheEntries);

  // The live-pool experiments: worker counts 1/2/4, a handful of
  // commits each (scaled down with tiny --samples so smoke runs stay
  // fast).  Barrier = state-migrating patches (every worker parks);
  // rolling = code-only patches (nobody parks — the table exists to
  // prove the parks column is zero while the commit still lands).
  unsigned PoolCommits = Samples < 6 ? 3 : 8;
  std::vector<PoolCommitResult> Barrier, Rolling;
  for (unsigned W : {1u, 2u, 4u}) {
    Barrier.push_back(runPoolCommits(W, PoolCommits, /*Rolling=*/false));
    Rolling.push_back(runPoolCommits(W, PoolCommits, /*Rolling=*/true));
  }

  if (Json) {
    std::fprintf(Out,
                 "{\n  \"bench\": \"update_duration\",\n"
                 "  \"samples\": %u,\n  \"cache_entries\": %u,\n"
                 "  \"results\": [",
                 Samples, CacheEntries);
    bool First = true;
    for (const std::string &Id : Order) {
      const Agg &A = Table[Id];
      double StageCommit = A.Stage.mean() + A.Commit.mean();
      double PauseRatio =
          A.Commit.mean() > 0 ? StageCommit / A.Commit.mean() : 1e9;
      std::fprintf(Out,
                   "%s\n    {\"patch\": \"%s\", \"kind\": \"%s\", "
                   "\"bytes\": %zu, \"stage_ms\": %.4f, "
                   "\"commit_pause_ms\": %.4f, \"verify_ms\": %.4f, "
                   "\"prepare_ms\": %.4f, \"build_ms\": %.4f, "
                   "\"total_ms\": %.4f, \"cells\": %zu, "
                   "\"pause_ratio\": %.1f}",
                   First ? "" : ",", Id.c_str(), A.Kind.c_str(), A.Bytes,
                   A.Stage.mean(), A.Commit.mean(), A.Verify.mean(),
                   A.Prepare.mean(), A.Build.mean(), A.Total.mean(),
                   A.Migrated, PauseRatio);
      First = false;
    }
    std::fprintf(Out, "\n  ],\n  \"barrier\": [");
    First = true;
    for (const PoolCommitResult &B : Barrier) {
      std::fprintf(Out,
                   "%s\n    {\"workers\": %u, \"commits\": %u, "
                   "\"barrier_rounds\": %llu, \"pauses\": %llu, "
                   "\"pause_mean_ms\": %.4f, \"pause_max_ms\": %.4f, "
                   "\"commit_mean_ms\": %.4f}",
                   First ? "" : ",", B.Workers, B.Commits,
                   static_cast<unsigned long long>(B.BarrierRounds),
                   static_cast<unsigned long long>(B.Pauses),
                   B.MeanPauseMs, B.MaxPauseMs, B.MeanCommitMs);
      First = false;
    }
    std::fprintf(Out, "\n  ],\n  \"rolling\": [");
    First = true;
    for (const PoolCommitResult &B : Rolling) {
      std::fprintf(Out,
                   "%s\n    {\"workers\": %u, \"commits\": %u, "
                   "\"rolling_commits\": %llu, \"barrier_rounds\": %llu, "
                   "\"pauses\": %llu, \"commit_mean_ms\": %.4f, "
                   "\"commit_max_ms\": %.4f}",
                   First ? "" : ",", B.Workers, B.Commits,
                   static_cast<unsigned long long>(B.RollingCommits),
                   static_cast<unsigned long long>(B.BarrierRounds),
                   static_cast<unsigned long long>(B.Pauses),
                   B.MeanCommitMs, B.MaxCommitMs);
      First = false;
    }
    std::fprintf(Out, "\n  ]\n}\n");
  } else {
    std::fprintf(Out,
                 "E3: dynamic update duration per patch (%u samples, "
                 "warmed cache: %u docs)\n",
                 Samples, CacheEntries);
    std::fprintf(Out, "reproduces: PLDI'01 per-patch update time table, "
                      "split stage vs. commit pause\n\n");
    std::fprintf(Out, "%-26s %-24s %8s %9s %9s %9s %9s %9s %6s %7s\n",
                 "patch", "kind", "bytes", "stage", "verify", "prepare",
                 "build", "pause(ms)", "cells", "ratio");
    std::fprintf(Out, "%.*s\n", 122,
                 "--------------------------------------------------------"
                 "--------------------------------------------------------"
                 "----------");
    for (const std::string &Id : Order) {
      const Agg &A = Table[Id];
      double StageCommit = A.Stage.mean() + A.Commit.mean();
      double PauseRatio =
          A.Commit.mean() > 0 ? StageCommit / A.Commit.mean() : 1e9;
      std::fprintf(Out,
                   "%-26s %-24s %8zu %9.3f %9.3f %9.3f %9.3f %9.3f %6zu "
                   "%6.1fx\n",
                   Id.c_str(), A.Kind.c_str(), A.Bytes, A.Stage.mean(),
                   A.Verify.mean(), A.Prepare.mean(), A.Build.mean(),
                   A.Commit.mean(), A.Migrated, PauseRatio);
    }
    std::fprintf(Out,
                 "\nshape check (paper + this repo's API): every patch "
                 "applies in milliseconds\n(well under the paper's "
                 "sub-second bound); verification cost appears only on\n"
                 "the verified (VTAL) patch and is paid at *stage* time, "
                 "off the serving\nthread; the serving pause (commit) is "
                 "a small fraction of the total —\nthe ratio column — "
                 "because only binding swings and validated state swaps\n"
                 "happen at the update point.\n");
    std::fprintf(Out,
                 "\ncross-worker update barrier (state-migrating "
                 "patches, reactor pool under\nkeep-alive load, %u "
                 "commits):\n",
                 PoolCommits);
    std::fprintf(Out, "%8s %8s %8s %14s %13s\n", "workers", "rounds",
                 "pauses", "mean pause(ms)", "max pause(ms)");
    for (const PoolCommitResult &B : Barrier)
      std::fprintf(Out, "%8u %8llu %8llu %14.4f %13.4f\n", B.Workers,
                   static_cast<unsigned long long>(B.BarrierRounds),
                   static_cast<unsigned long long>(B.Pauses),
                   B.MeanPauseMs, B.MaxPauseMs);
    std::fprintf(Out,
                 "\nshape check: the per-worker pause stays in "
                 "microseconds at every worker\ncount — parking N "
                 "workers costs wakeups, not work, and the commit "
                 "itself\nis the same generation-validated swap as the "
                 "single-threaded path.\n");
    std::fprintf(Out,
                 "\nrolling (code-only) commits, same load, %u "
                 "commits:\n",
                 PoolCommits);
    std::fprintf(Out, "%8s %8s %8s %8s %15s %14s\n", "workers",
                 "rolling", "rounds", "pauses", "mean commit(ms)",
                 "max commit(ms)");
    for (const PoolCommitResult &B : Rolling)
      std::fprintf(Out, "%8u %8llu %8llu %8llu %15.4f %14.4f\n",
                   B.Workers,
                   static_cast<unsigned long long>(B.RollingCommits),
                   static_cast<unsigned long long>(B.BarrierRounds),
                   static_cast<unsigned long long>(B.Pauses),
                   B.MeanCommitMs, B.MaxCommitMs);
    std::fprintf(Out,
                 "\nshape check: a code-only patch swings every worker "
                 "with ZERO barrier\nrounds and ZERO parks — the only "
                 "cost anywhere is the committing worker's\nown swing "
                 "(the commit column), and each worker adopts the new "
                 "code at its\nown next quiescent point.\n");
  }
  if (Out != stdout)
    std::fclose(Out);
  return 0;
}
