//===- bench/bench_vtal_interp.cpp - Experiment E8 ------------*- C++ -*-===//
///
/// E8: steady-state execution throughput of the VTAL engine — the cost a
/// VTAL-shipped handler pays per request once the patch is linked.  The
/// PLDI 2001 position is that updateability must be near-free in steady
/// state; for patch code executed by the interpreter that means the inner
/// loop may not do name lookups or per-call heap allocation.  DESIGN.md §5
/// documents the resolved execution form these workloads exercise.
///
/// Rows:
///   CallTree        call-heavy: binary recursion, ~2 calls per 10 insts
///   CallChain       call-heavy: a loop of direct calls through 8 callees
///   HostCalls       import dispatch: tight loop crossing into a host fn
///   ArithLoop       straight-line arithmetic (no calls; dispatch floor)
///   StringOps       handler-shaped string slicing and search
///
/// The *Profiled rows rerun the call-heavy and dispatch-floor workloads
/// with a trace::ModuleProfile attached — the flight recorder's
/// hot-function profiler — so the per-call-boundary overhead is the
/// delta against the matching base row.  The base rows themselves carry
/// the compiled-in-but-unattached hook cost (one null check per call
/// boundary), which a -DDSU_VTAL_PROFILER=OFF build removes; DESIGN.md
/// §16 records both deltas.
///
/// The *Native rows rerun the call-heavy and dispatch-floor workloads
/// through the baseline compiler (vtal/native/), and the *StaticC rows
/// are the same algorithms as ahead-of-time C++ called through a
/// function pointer (the binding indirection every updateable call pays
/// anyway) — together the interp : native : static-C ladder of DESIGN.md
/// §17.  `bench_vtal_interp --json [--out F | --merge F]` emits that
/// ladder as machine-readable rows (BENCH_vtal.json via the bench-json
/// target) instead of running Google Benchmark.
///
//===----------------------------------------------------------------------===//

#include "support/MemoryBuffer.h"
#include "support/StringUtil.h"
#include "trace/Profile.h"
#include "vtal/Assembler.h"
#include "vtal/Interp.h"
#include "vtal/Verifier.h"
#ifndef DSU_VTAL_NO_NATIVE
#include "vtal/native/NativeImage.h"
#endif

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>

using namespace dsu;
using namespace dsu::vtal;

namespace {

Module mustModule(const std::string &Src) {
  Module M = cantFail(assemble(Src), "bench module");
  cantFail(verifyModule(M), "bench module verify");
  return M;
}

/// Attaches a registry-backed profile to \p I covering \p M's functions.
std::shared_ptr<trace::ModuleProfile> attachProfile(Interpreter &I,
                                                    const Module &M) {
  std::vector<std::string> Names;
  for (const Function &F : M.Functions)
    Names.push_back(F.Name);
  std::shared_ptr<trace::ModuleProfile> P =
      trace::ProfileRegistry::instance().create("bench", M.Name,
                                                std::move(Names));
  I.setProfile(P.get());
  return P;
}

// Binary recursion: fib — the densest VTAL-to-VTAL call workload.
Module callTreeModule() {
  return mustModule(R"(
module calltree
func fib (n: int) -> int {
  load n
  push.i 2
  lt
  brif base
  load n
  push.i 1
  sub
  call fib
  load n
  push.i 2
  sub
  call fib
  add
  ret
base:
  load n
  ret
}
)");
}

void BM_CallTree(benchmark::State &State) {
  Module M = callTreeModule();
  Interpreter I(M);
  std::vector<Value> Args{Value::makeInt(State.range(0))};
  uint64_t Fuel = 0;
  for (auto _ : State) {
    Expected<Value> R = I.call("fib", Args);
    if (!R)
      State.SkipWithError(R.error().str().c_str());
    benchmark::DoNotOptimize(R->asInt());
    Fuel = I.lastFuelUsed();
  }
  State.counters["insts/s"] = benchmark::Counter(
      static_cast<double>(Fuel), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_CallTree)->Arg(15)->Arg(20);

// The same binary recursion with the hot-function profiler attached:
// the worst case for the profiler, ~2 call boundaries per 10
// instructions, each paying the relaxed-atomic bumps.
void BM_CallTreeProfiled(benchmark::State &State) {
  Module M = callTreeModule();
  Interpreter I(M);
  std::shared_ptr<trace::ModuleProfile> P = attachProfile(I, M);
  std::vector<Value> Args{Value::makeInt(State.range(0))};
  uint64_t Fuel = 0;
  for (auto _ : State) {
    Expected<Value> R = I.call("fib", Args);
    if (!R)
      State.SkipWithError(R.error().str().c_str());
    benchmark::DoNotOptimize(R->asInt());
    Fuel = I.lastFuelUsed();
  }
  State.counters["insts/s"] = benchmark::Counter(
      static_cast<double>(Fuel), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_CallTreeProfiled)->Arg(15)->Arg(20);

// A loop whose body calls through a chain of small functions, the shape
// of handler code factored into helpers.
Module callChainModule(unsigned Depth) {
  std::string Src = "module callchain\n";
  Src += "func leaf (x: int) -> int {\n  load x\n  push.i 1\n  add\n  ret\n}\n";
  std::string Prev = "leaf";
  for (unsigned D = 0; D != Depth; ++D) {
    std::string Name = formatString("hop_%u", D);
    Src += formatString(
        "func %s (x: int) -> int {\n  load x\n  call %s\n  ret\n}\n",
        Name.c_str(), Prev.c_str());
    Prev = Name;
  }
  Src += formatString(R"(
func drive (n: int) -> int {
  locals (acc: int, i: int)
  push.i 0
  store acc
  push.i 0
  store i
loop:
  load i
  load n
  ge
  brif done
  load acc
  call %s
  store acc
  load i
  push.i 1
  add
  store i
  br loop
done:
  load acc
  ret
}
)",
                      Prev.c_str());
  return mustModule(Src);
}

void BM_CallChain(benchmark::State &State) {
  Module M = callChainModule(8);
  Interpreter I(M);
  std::vector<Value> Args{Value::makeInt(State.range(0))};
  uint64_t Fuel = 0;
  for (auto _ : State) {
    Expected<Value> R = I.call("drive", Args);
    if (!R)
      State.SkipWithError(R.error().str().c_str());
    benchmark::DoNotOptimize(R->asInt());
    Fuel = I.lastFuelUsed();
  }
  State.counters["insts/s"] = benchmark::Counter(
      static_cast<double>(Fuel), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_CallChain)->Arg(1000);

void BM_CallChainProfiled(benchmark::State &State) {
  Module M = callChainModule(8);
  Interpreter I(M);
  std::shared_ptr<trace::ModuleProfile> P = attachProfile(I, M);
  std::vector<Value> Args{Value::makeInt(State.range(0))};
  uint64_t Fuel = 0;
  for (auto _ : State) {
    Expected<Value> R = I.call("drive", Args);
    if (!R)
      State.SkipWithError(R.error().str().c_str());
    benchmark::DoNotOptimize(R->asInt());
    Fuel = I.lastFuelUsed();
  }
  State.counters["insts/s"] = benchmark::Counter(
      static_cast<double>(Fuel), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_CallChainProfiled)->Arg(1000);

// Import dispatch: the handler-to-host boundary in a tight loop.
void BM_HostCalls(benchmark::State &State) {
  Module M = mustModule(R"(
module hostloop
import bump : (int) -> int
func drive (n: int) -> int {
  locals (acc: int, i: int)
  push.i 0
  store acc
  push.i 0
  store i
loop:
  load i
  load n
  ge
  brif done
  load acc
  call bump
  store acc
  load i
  push.i 1
  add
  store i
  br loop
done:
  load acc
  ret
}
)");
  Interpreter I(M);
  cantFail(I.bindImport("bump",
                        [](const std::vector<Value> &A) -> Expected<Value> {
                          return Value::makeInt(A[0].asInt() + 1);
                        }),
           "bind bump");
  std::vector<Value> Args{Value::makeInt(State.range(0))};
  for (auto _ : State) {
    Expected<Value> R = I.call("drive", Args);
    if (!R)
      State.SkipWithError(R.error().str().c_str());
    benchmark::DoNotOptimize(R->asInt());
  }
  State.counters["hostcalls/s"] = benchmark::Counter(
      static_cast<double>(State.range(0)),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_HostCalls)->Arg(1000);

// Straight-line arithmetic loop: the dispatch floor, no calls at all.
Module arithModule() {
  return mustModule(R"(
module arith
func sum (n: int) -> int {
  locals (acc: int, i: int)
  push.i 0
  store acc
  push.i 0
  store i
loop:
  load i
  load n
  ge
  brif done
  load acc
  load i
  load i
  mul
  add
  store acc
  load i
  push.i 1
  add
  store i
  br loop
done:
  load acc
  ret
}
)");
}

void BM_ArithLoop(benchmark::State &State) {
  Module M = arithModule();
  Interpreter I(M);
  std::vector<Value> Args{Value::makeInt(State.range(0))};
  uint64_t Fuel = 0;
  for (auto _ : State) {
    Expected<Value> R = I.call("sum", Args);
    if (!R)
      State.SkipWithError(R.error().str().c_str());
    benchmark::DoNotOptimize(R->asInt());
    Fuel = I.lastFuelUsed();
  }
  State.counters["insts/s"] = benchmark::Counter(
      static_cast<double>(Fuel), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_ArithLoop)->Arg(10000);

// Dispatch floor with the profiler attached: one activation per 10k
// instructions, so the hooks should be invisible here — this row pins
// down that the per-instruction loop really is untouched.
void BM_ArithLoopProfiled(benchmark::State &State) {
  Module M = arithModule();
  Interpreter I(M);
  std::shared_ptr<trace::ModuleProfile> P = attachProfile(I, M);
  std::vector<Value> Args{Value::makeInt(State.range(0))};
  uint64_t Fuel = 0;
  for (auto _ : State) {
    Expected<Value> R = I.call("sum", Args);
    if (!R)
      State.SkipWithError(R.error().str().c_str());
    benchmark::DoNotOptimize(R->asInt());
    Fuel = I.lastFuelUsed();
  }
  State.counters["insts/s"] = benchmark::Counter(
      static_cast<double>(Fuel), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_ArithLoopProfiled)->Arg(10000);

#ifndef DSU_VTAL_NO_NATIVE
/// Attaches a fully compiled image to \p I; aborts if \p Fn did not
/// actually compile (a bench row must never silently measure the wrong
/// tier).
void attachNative(Interpreter &I, const char *Fn) {
  auto Img = native::NativeImage::compile(I.resolved());
  if (!Img) {
    std::fprintf(stderr, "native compile failed: %s\n",
                 Img.error().str().c_str());
    std::abort();
  }
  uint32_t Idx = cantFail(I.functionIndex(Fn), "bench fn index");
  if (!(*Img)->compiled(Idx)) {
    std::fprintf(stderr, "bench fn '%s' did not compile natively\n", Fn);
    std::abort();
  }
  I.setNativeImage(*Img);
}

void BM_CallTreeNative(benchmark::State &State) {
  Module M = callTreeModule();
  Interpreter I(M);
  attachNative(I, "fib");
  std::vector<Value> Args{Value::makeInt(State.range(0))};
  uint64_t Fuel = 0;
  for (auto _ : State) {
    Expected<Value> R = I.call("fib", Args);
    if (!R)
      State.SkipWithError(R.error().str().c_str());
    benchmark::DoNotOptimize(R->asInt());
    Fuel = I.lastFuelUsed();
  }
  State.counters["insts/s"] = benchmark::Counter(
      static_cast<double>(Fuel), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_CallTreeNative)->Arg(15)->Arg(20);

void BM_CallChainNative(benchmark::State &State) {
  Module M = callChainModule(8);
  Interpreter I(M);
  attachNative(I, "drive");
  std::vector<Value> Args{Value::makeInt(State.range(0))};
  uint64_t Fuel = 0;
  for (auto _ : State) {
    Expected<Value> R = I.call("drive", Args);
    if (!R)
      State.SkipWithError(R.error().str().c_str());
    benchmark::DoNotOptimize(R->asInt());
    Fuel = I.lastFuelUsed();
  }
  State.counters["insts/s"] = benchmark::Counter(
      static_cast<double>(Fuel), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_CallChainNative)->Arg(1000);

void BM_ArithLoopNative(benchmark::State &State) {
  Module M = arithModule();
  Interpreter I(M);
  attachNative(I, "sum");
  std::vector<Value> Args{Value::makeInt(State.range(0))};
  uint64_t Fuel = 0;
  for (auto _ : State) {
    Expected<Value> R = I.call("sum", Args);
    if (!R)
      State.SkipWithError(R.error().str().c_str());
    benchmark::DoNotOptimize(R->asInt());
    Fuel = I.lastFuelUsed();
  }
  State.counters["insts/s"] = benchmark::Counter(
      static_cast<double>(Fuel), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_ArithLoopNative)->Arg(10000);
#endif // DSU_VTAL_NO_NATIVE

// The ahead-of-time ceiling: the same algorithms as -O2 C++, called
// through a function pointer so the comparison includes the one
// indirection every updateable call pays (E1's result: that cost is the
// price of updateability itself, not of the execution tier).
__attribute__((noinline)) int64_t fibC(int64_t N) {
  return N < 2 ? N : fibC(N - 1) + fibC(N - 2);
}
__attribute__((noinline)) int64_t sumC(int64_t N) {
  int64_t Acc = 0;
  for (int64_t I = 0; I < N; ++I)
    Acc += I * I;
  return Acc;
}
int64_t (*volatile FibCPtr)(int64_t) = &fibC;
int64_t (*volatile SumCPtr)(int64_t) = &sumC;

void BM_CallTreeStaticC(benchmark::State &State) {
  int64_t N = State.range(0);
  for (auto _ : State)
    benchmark::DoNotOptimize(FibCPtr(N));
}
BENCHMARK(BM_CallTreeStaticC)->Arg(15)->Arg(20);

void BM_ArithLoopStaticC(benchmark::State &State) {
  int64_t N = State.range(0);
  for (auto _ : State)
    benchmark::DoNotOptimize(SumCPtr(N));
}
BENCHMARK(BM_ArithLoopStaticC)->Arg(10000);

// Handler-shaped string work: strip a query string per "request".
void BM_StringOps(benchmark::State &State) {
  Module M = mustModule(R"(
module strops
func strip_query (target: string) -> string {
  locals (q: int)
  load target
  push.s "?"
  sfind
  store q
  load q
  push.i 0
  lt
  brif noquery
  load target
  push.i 0
  load q
  ssub
  ret
noquery:
  load target
  ret
}
)");
  Interpreter I(M);
  std::vector<Value> Args{Value::makeStr("/docs/index.html?session=abc123")};
  for (auto _ : State) {
    Expected<Value> R = I.call("strip_query", Args);
    if (!R)
      State.SkipWithError(R.error().str().c_str());
    benchmark::DoNotOptimize(R->asStr().size());
  }
}
BENCHMARK(BM_StringOps);

//===----------------------------------------------------------------------===//
// --json mode: the interp / native / static-C ladder as data
//===----------------------------------------------------------------------===//

/// Median-of-iterations nanoseconds per call of \p Fn (self-calibrating:
/// grows the batch until one batch spans >= 20ms).
template <typename F> double nsPerCall(F &&Fn) {
  Fn(); // warmup / first-touch
  uint64_t Iters = 1;
  for (;;) {
    auto T0 = std::chrono::steady_clock::now();
    for (uint64_t I = 0; I != Iters; ++I)
      Fn();
    double Ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - T0)
            .count());
    if (Ns >= 2e7 || Iters >= (1u << 24))
      return Ns / static_cast<double>(Iters);
    Iters *= 4;
  }
}

struct TierRow {
  const char *Workload;
  uint64_t Insts = 0;      ///< fuel per call (size of one workload run)
  double InterpNs = 0;
  double NativeNs = 0;     ///< 0 when the tier is compiled out
  double StaticNs = 0;
};

/// One workload through all three tiers.  \p Fn / \p Arg name the VTAL
/// entry; \p CFn is the ahead-of-time twin.
TierRow runLadder(const char *Workload, Module M, const char *Fn,
                  int64_t Arg, int64_t (*volatile &CFn)(int64_t)) {
  TierRow Row;
  Row.Workload = Workload;
  std::vector<Value> Args{Value::makeInt(Arg)};
  {
    Interpreter I(M);
    Row.InterpNs = nsPerCall([&] {
      benchmark::DoNotOptimize(cantFail(I.call(Fn, Args), Fn).asInt());
    });
    Row.Insts = I.lastFuelUsed();
  }
#ifndef DSU_VTAL_NO_NATIVE
  {
    Interpreter I(M);
    attachNative(I, Fn);
    Row.NativeNs = nsPerCall([&] {
      benchmark::DoNotOptimize(cantFail(I.call(Fn, Args), Fn).asInt());
    });
  }
#endif
  Row.StaticNs = nsPerCall([&] { benchmark::DoNotOptimize(CFn(Arg)); });
  return Row;
}

int runJson(const char *OutPath, const char *MergePath) {
  std::vector<TierRow> Rows;
  Rows.push_back(
      runLadder("fib20", callTreeModule(), "fib", 20, FibCPtr));
  Rows.push_back(
      runLadder("arith10k", arithModule(), "sum", 10000, SumCPtr));

  auto appendRows = [&](std::string &J) {
    bool First = true;
    for (const TierRow &R : Rows) {
      char Buf[512];
      double NvI = R.NativeNs > 0 ? R.InterpNs / R.NativeNs : 0.0;
      double NvC = R.StaticNs > 0 && R.NativeNs > 0
                       ? R.NativeNs / R.StaticNs
                       : 0.0;
      std::snprintf(
          Buf, sizeof(Buf),
          "%s\n    {\"workload\": \"%s\", \"insts\": %llu, "
          "\"interp_ns\": %.1f, \"native_ns\": %.1f, "
          "\"static_c_ns\": %.1f, \"native_speedup_vs_interp\": %.2f, "
          "\"native_slowdown_vs_static_c\": %.2f}",
          First ? "" : ",", R.Workload,
          static_cast<unsigned long long>(R.Insts), R.InterpNs, R.NativeNs,
          R.StaticNs, NvI, NvC);
      J += Buf;
      First = false;
    }
  };

  if (MergePath) {
    Expected<std::string> Existing = readFile(MergePath);
    if (!Existing) {
      std::fprintf(stderr, "cannot merge into %s: %s\n", MergePath,
                   Existing.error().str().c_str());
      return 1;
    }
    size_t Close = Existing->rfind('}');
    if (Close == std::string::npos) {
      std::fprintf(stderr, "cannot merge into %s: not a JSON object\n",
                   MergePath);
      return 1;
    }
    std::string Merged = Existing->substr(0, Close);
    while (!Merged.empty() &&
           (Merged.back() == '\n' || Merged.back() == ' '))
      Merged.pop_back();
    Merged += ",\n  \"vtal_tiers\": [";
    appendRows(Merged);
    Merged += "\n  ]\n}\n";
    if (Error E = writeFile(MergePath, Merged)) {
      std::fprintf(stderr, "cannot write %s: %s\n", MergePath,
                   E.str().c_str());
      return 1;
    }
    return 0;
  }

  std::string J = "{\n  \"bench\": \"vtal_tiers\",\n  \"native_tier\": ";
#ifdef DSU_VTAL_NO_NATIVE
  J += "false";
#else
  J += "true";
#endif
  J += ",\n  \"vtal_tiers\": [";
  appendRows(J);
  J += "\n  ]\n}\n";

  if (OutPath) {
    if (Error E = writeFile(OutPath, J)) {
      std::fprintf(stderr, "cannot write %s: %s\n", OutPath,
                   E.str().c_str());
      return 1;
    }
  } else {
    std::fprintf(stdout, "%s", J.c_str());
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  bool Json = false;
  const char *OutPath = nullptr;
  const char *MergePath = nullptr;
  for (int I = 1; I != argc; ++I) {
    if (std::strcmp(argv[I], "--json") == 0)
      Json = true;
    else if (std::strcmp(argv[I], "--out") == 0 && I + 1 < argc)
      OutPath = argv[++I];
    else if (std::strcmp(argv[I], "--merge") == 0 && I + 1 < argc)
      MergePath = argv[++I];
  }
  if (Json)
    return runJson(OutPath, MergePath);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
