//===- bench/bench_vtal_interp.cpp - Experiment E8 ------------*- C++ -*-===//
///
/// E8: steady-state execution throughput of the VTAL engine — the cost a
/// VTAL-shipped handler pays per request once the patch is linked.  The
/// PLDI 2001 position is that updateability must be near-free in steady
/// state; for patch code executed by the interpreter that means the inner
/// loop may not do name lookups or per-call heap allocation.  DESIGN.md §5
/// documents the resolved execution form these workloads exercise.
///
/// Rows:
///   CallTree        call-heavy: binary recursion, ~2 calls per 10 insts
///   CallChain       call-heavy: a loop of direct calls through 8 callees
///   HostCalls       import dispatch: tight loop crossing into a host fn
///   ArithLoop       straight-line arithmetic (no calls; dispatch floor)
///   StringOps       handler-shaped string slicing and search
///
/// The *Profiled rows rerun the call-heavy and dispatch-floor workloads
/// with a trace::ModuleProfile attached — the flight recorder's
/// hot-function profiler — so the per-call-boundary overhead is the
/// delta against the matching base row.  The base rows themselves carry
/// the compiled-in-but-unattached hook cost (one null check per call
/// boundary), which a -DDSU_VTAL_PROFILER=OFF build removes; DESIGN.md
/// §16 records both deltas.
///
//===----------------------------------------------------------------------===//

#include "support/StringUtil.h"
#include "trace/Profile.h"
#include "vtal/Assembler.h"
#include "vtal/Interp.h"
#include "vtal/Verifier.h"

#include <benchmark/benchmark.h>

using namespace dsu;
using namespace dsu::vtal;

namespace {

Module mustModule(const std::string &Src) {
  Module M = cantFail(assemble(Src), "bench module");
  cantFail(verifyModule(M), "bench module verify");
  return M;
}

/// Attaches a registry-backed profile to \p I covering \p M's functions.
std::shared_ptr<trace::ModuleProfile> attachProfile(Interpreter &I,
                                                    const Module &M) {
  std::vector<std::string> Names;
  for (const Function &F : M.Functions)
    Names.push_back(F.Name);
  std::shared_ptr<trace::ModuleProfile> P =
      trace::ProfileRegistry::instance().create("bench", M.Name,
                                                std::move(Names));
  I.setProfile(P.get());
  return P;
}

// Binary recursion: fib — the densest VTAL-to-VTAL call workload.
Module callTreeModule() {
  return mustModule(R"(
module calltree
func fib (n: int) -> int {
  load n
  push.i 2
  lt
  brif base
  load n
  push.i 1
  sub
  call fib
  load n
  push.i 2
  sub
  call fib
  add
  ret
base:
  load n
  ret
}
)");
}

void BM_CallTree(benchmark::State &State) {
  Module M = callTreeModule();
  Interpreter I(M);
  std::vector<Value> Args{Value::makeInt(State.range(0))};
  uint64_t Fuel = 0;
  for (auto _ : State) {
    Expected<Value> R = I.call("fib", Args);
    if (!R)
      State.SkipWithError(R.error().str().c_str());
    benchmark::DoNotOptimize(R->asInt());
    Fuel = I.lastFuelUsed();
  }
  State.counters["insts/s"] = benchmark::Counter(
      static_cast<double>(Fuel), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_CallTree)->Arg(15)->Arg(20);

// The same binary recursion with the hot-function profiler attached:
// the worst case for the profiler, ~2 call boundaries per 10
// instructions, each paying the relaxed-atomic bumps.
void BM_CallTreeProfiled(benchmark::State &State) {
  Module M = callTreeModule();
  Interpreter I(M);
  std::shared_ptr<trace::ModuleProfile> P = attachProfile(I, M);
  std::vector<Value> Args{Value::makeInt(State.range(0))};
  uint64_t Fuel = 0;
  for (auto _ : State) {
    Expected<Value> R = I.call("fib", Args);
    if (!R)
      State.SkipWithError(R.error().str().c_str());
    benchmark::DoNotOptimize(R->asInt());
    Fuel = I.lastFuelUsed();
  }
  State.counters["insts/s"] = benchmark::Counter(
      static_cast<double>(Fuel), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_CallTreeProfiled)->Arg(15)->Arg(20);

// A loop whose body calls through a chain of small functions, the shape
// of handler code factored into helpers.
Module callChainModule(unsigned Depth) {
  std::string Src = "module callchain\n";
  Src += "func leaf (x: int) -> int {\n  load x\n  push.i 1\n  add\n  ret\n}\n";
  std::string Prev = "leaf";
  for (unsigned D = 0; D != Depth; ++D) {
    std::string Name = formatString("hop_%u", D);
    Src += formatString(
        "func %s (x: int) -> int {\n  load x\n  call %s\n  ret\n}\n",
        Name.c_str(), Prev.c_str());
    Prev = Name;
  }
  Src += formatString(R"(
func drive (n: int) -> int {
  locals (acc: int, i: int)
  push.i 0
  store acc
  push.i 0
  store i
loop:
  load i
  load n
  ge
  brif done
  load acc
  call %s
  store acc
  load i
  push.i 1
  add
  store i
  br loop
done:
  load acc
  ret
}
)",
                      Prev.c_str());
  return mustModule(Src);
}

void BM_CallChain(benchmark::State &State) {
  Module M = callChainModule(8);
  Interpreter I(M);
  std::vector<Value> Args{Value::makeInt(State.range(0))};
  uint64_t Fuel = 0;
  for (auto _ : State) {
    Expected<Value> R = I.call("drive", Args);
    if (!R)
      State.SkipWithError(R.error().str().c_str());
    benchmark::DoNotOptimize(R->asInt());
    Fuel = I.lastFuelUsed();
  }
  State.counters["insts/s"] = benchmark::Counter(
      static_cast<double>(Fuel), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_CallChain)->Arg(1000);

void BM_CallChainProfiled(benchmark::State &State) {
  Module M = callChainModule(8);
  Interpreter I(M);
  std::shared_ptr<trace::ModuleProfile> P = attachProfile(I, M);
  std::vector<Value> Args{Value::makeInt(State.range(0))};
  uint64_t Fuel = 0;
  for (auto _ : State) {
    Expected<Value> R = I.call("drive", Args);
    if (!R)
      State.SkipWithError(R.error().str().c_str());
    benchmark::DoNotOptimize(R->asInt());
    Fuel = I.lastFuelUsed();
  }
  State.counters["insts/s"] = benchmark::Counter(
      static_cast<double>(Fuel), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_CallChainProfiled)->Arg(1000);

// Import dispatch: the handler-to-host boundary in a tight loop.
void BM_HostCalls(benchmark::State &State) {
  Module M = mustModule(R"(
module hostloop
import bump : (int) -> int
func drive (n: int) -> int {
  locals (acc: int, i: int)
  push.i 0
  store acc
  push.i 0
  store i
loop:
  load i
  load n
  ge
  brif done
  load acc
  call bump
  store acc
  load i
  push.i 1
  add
  store i
  br loop
done:
  load acc
  ret
}
)");
  Interpreter I(M);
  cantFail(I.bindImport("bump",
                        [](const std::vector<Value> &A) -> Expected<Value> {
                          return Value::makeInt(A[0].asInt() + 1);
                        }),
           "bind bump");
  std::vector<Value> Args{Value::makeInt(State.range(0))};
  for (auto _ : State) {
    Expected<Value> R = I.call("drive", Args);
    if (!R)
      State.SkipWithError(R.error().str().c_str());
    benchmark::DoNotOptimize(R->asInt());
  }
  State.counters["hostcalls/s"] = benchmark::Counter(
      static_cast<double>(State.range(0)),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_HostCalls)->Arg(1000);

// Straight-line arithmetic loop: the dispatch floor, no calls at all.
Module arithModule() {
  return mustModule(R"(
module arith
func sum (n: int) -> int {
  locals (acc: int, i: int)
  push.i 0
  store acc
  push.i 0
  store i
loop:
  load i
  load n
  ge
  brif done
  load acc
  load i
  load i
  mul
  add
  store acc
  load i
  push.i 1
  add
  store i
  br loop
done:
  load acc
  ret
}
)");
}

void BM_ArithLoop(benchmark::State &State) {
  Module M = arithModule();
  Interpreter I(M);
  std::vector<Value> Args{Value::makeInt(State.range(0))};
  uint64_t Fuel = 0;
  for (auto _ : State) {
    Expected<Value> R = I.call("sum", Args);
    if (!R)
      State.SkipWithError(R.error().str().c_str());
    benchmark::DoNotOptimize(R->asInt());
    Fuel = I.lastFuelUsed();
  }
  State.counters["insts/s"] = benchmark::Counter(
      static_cast<double>(Fuel), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_ArithLoop)->Arg(10000);

// Dispatch floor with the profiler attached: one activation per 10k
// instructions, so the hooks should be invisible here — this row pins
// down that the per-instruction loop really is untouched.
void BM_ArithLoopProfiled(benchmark::State &State) {
  Module M = arithModule();
  Interpreter I(M);
  std::shared_ptr<trace::ModuleProfile> P = attachProfile(I, M);
  std::vector<Value> Args{Value::makeInt(State.range(0))};
  uint64_t Fuel = 0;
  for (auto _ : State) {
    Expected<Value> R = I.call("sum", Args);
    if (!R)
      State.SkipWithError(R.error().str().c_str());
    benchmark::DoNotOptimize(R->asInt());
    Fuel = I.lastFuelUsed();
  }
  State.counters["insts/s"] = benchmark::Counter(
      static_cast<double>(Fuel), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_ArithLoopProfiled)->Arg(10000);

// Handler-shaped string work: strip a query string per "request".
void BM_StringOps(benchmark::State &State) {
  Module M = mustModule(R"(
module strops
func strip_query (target: string) -> string {
  locals (q: int)
  load target
  push.s "?"
  sfind
  store q
  load q
  push.i 0
  lt
  brif noquery
  load target
  push.i 0
  load q
  ssub
  ret
noquery:
  load target
  ret
}
)");
  Interpreter I(M);
  std::vector<Value> Args{Value::makeStr("/docs/index.html?session=abc123")};
  for (auto _ : State) {
    Expected<Value> R = I.call("strip_query", Args);
    if (!R)
      State.SkipWithError(R.error().str().c_str());
    benchmark::DoNotOptimize(R->asStr().size());
  }
}
BENCHMARK(BM_StringOps);

} // namespace

BENCHMARK_MAIN();
