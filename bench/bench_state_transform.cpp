//===- bench/bench_state_transform.cpp - Experiment E4 --------*- C++ -*-===//
///
/// E4: state-transformation cost as a function of live-state size.  The
/// paper's transformers traverse live data at update time, so the
/// disruption window scales with the amount of state of the changed
/// type; this harness measures that scaling directly (eager transform,
/// the design choice recorded in DESIGN.md §7).
///
//===----------------------------------------------------------------------===//

#include "state/StateCell.h"
#include "state/Transform.h"
#include "support/Timer.h"
#include "types/Type.h"

#include <cstdio>
#include <map>
#include <string>
#include <vector>

using namespace dsu;

namespace {

struct RecV1 {
  std::string Key;
  int64_t Value;
};
struct RecV2 {
  std::string Key;
  int64_t Value;
  int64_t Hits;
};

double runOnce(size_t Records) {
  TypeContext Ctx;
  StateRegistry State;
  TransformerRegistry Xforms;

  auto Data = std::make_shared<std::vector<RecV1>>();
  Data->reserve(Records);
  for (size_t I = 0; I != Records; ++I)
    Data->push_back(RecV1{"key-" + std::to_string(I),
                          static_cast<int64_t>(I)});
  cantFail(State.define("app.records",
                        Ctx.arrayType(Ctx.namedType("rec", 1)),
                        std::move(Data)),
           "define");

  VersionBump Bump{VersionedName{"rec", 1}, VersionedName{"rec", 2}};
  Xforms.add(Bump, [](const std::shared_ptr<void> &Old,
                      const StateCell &) -> Expected<std::shared_ptr<void>> {
    auto *V1 = static_cast<std::vector<RecV1> *>(Old.get());
    auto V2 = std::make_shared<std::vector<RecV2>>();
    V2->reserve(V1->size());
    for (const RecV1 &R : *V1)
      V2->push_back(RecV2{R.Key, R.Value, 0});
    return std::shared_ptr<void>(std::move(V2));
  });

  Timer T;
  cantFail(runStateTransform(Ctx, State, Xforms, {Bump}), "transform");
  return T.elapsedMs();
}

} // namespace

int main(int argc, char **argv) {
  unsigned Samples = 7;
  if (argc > 1)
    Samples = static_cast<unsigned>(std::atoi(argv[1]));

  std::printf("E4: eager state-transform time vs live records "
              "(%u samples/point)\n",
              Samples);
  std::printf("reproduces: PLDI'01 transformer-cost discussion (update "
              "disruption scales\nwith live state of the changed type)\n\n");
  std::printf("%10s %12s %12s %14s\n", "records", "mean ms", "p95 ms",
              "ns/record");
  std::printf("---------------------------------------------------\n");

  for (size_t Records : {100ul, 1000ul, 10000ul, 100000ul, 1000000ul}) {
    RunningStat S;
    for (unsigned I = 0; I != Samples; ++I)
      S.addSample(runOnce(Records));
    std::printf("%10zu %12.3f %12.3f %14.1f\n", Records, S.mean(),
                S.percentile(95), S.mean() * 1e6 / Records);
  }

  std::printf("\nshape check (paper): time is linear in live records "
              "(constant ns/record\nonce past cache effects); the update "
              "window for a 10^6-record cache stays\nwithin tens to "
              "hundreds of milliseconds.\n");
  return 0;
}
