//===- bench/bench_rollout.cpp - Canary rollout reaction times -*- C++ -*-===//
///
/// The rollout control plane's reaction-time table: for each injected
/// fault class (every-response-500, trap-on-call), a bad patch is
/// canaried on 1 worker of a 4-worker FlashEd pool under live keep-alive
/// load and auto-rolled-back by its health gate.  Reported per class:
///
///   detect_ms   canary commit -> gate verdict (time-to-detect)
///   revert_ms   gate trip -> rollback complete (time-to-rollback)
///   bad_serves  requests the bad binding served before the revert
///               (5xx responses for the error patch, traps for the
///               trapping patch)
///   control_5xx responses the *control* group botched — the blast-
///               radius invariant; must be 0
///
/// The numbers quantify the paper's availability argument one level up:
/// not only is the update pause sub-millisecond, but a *bad* update is
/// contained to one worker's traffic for well under a window.
///
/// Usage: bench_rollout [samples] [--json] [--out FILE] [--merge FILE]
///
/// --merge injects the rollout table into an existing BENCH_update.json
/// (written by bench_update_duration) as a top-level "rollout" array.
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "flashed/App.h"
#include "flashed/Client.h"
#include "net/ReactorPool.h"
#include "runtime/RolloutController.h"
#include "runtime/UpdateController.h"
#include "support/FaultInject.h"
#include "support/MemoryBuffer.h"
#include "support/Timer.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace dsu;
using namespace dsu::flashed;

namespace {

constexpr unsigned kWorkers = 4;
constexpr uint64_t kWindowMs = 600;

struct FaultAgg {
  std::string Kind;
  RunningStat DetectMs, RevertMs, BadServes, Control5xx;
  unsigned RolledBack = 0;
  unsigned Samples = 0;
};

/// One rollout of \p PatchText through a live pool; returns the record.
RolloutRecord runOne(const std::string &PatchText) {
  Runtime RT;
  // This bench measures the *dynamic* gates' detect/revert latency; the
  // static analyzer would refuse the trap patch before it ever canaries.
  RT.setAnalysisGate(false);
  FlashedApp App(RT);
  DocStore Docs;
  Docs.fillSynthetic(8, 2048);
  cantFail(App.init(std::move(Docs)), "init");
  App.enableAdmin(RT.controller());

  net::PoolOptions O;
  O.Workers = kWorkers;
  O.PollTimeoutMs = 2;
  net::ReactorPool Pool(
      [&App](const RequestHead &Head, std::string_view Raw, std::string &Out,
             SharedBody &Body) { App.handleInto(Head, Raw, Out, Body); },
      O);
  Pool.setUpdateRuntime(RT);
  App.attachPool(Pool);
  cantFail(Pool.start(), "pool start");

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Served{0};
  std::vector<std::thread> Loaders;
  for (unsigned T = 0; T != 2 * kWorkers; ++T)
    Loaders.emplace_back([&] {
      KeepAliveClient C;
      if (C.connectTo(Pool.port()))
        return;
      unsigned I = 0;
      while (!Stop.load()) {
        // Per-worker SO_REUSEPORT listeners hash connections to
        // workers; re-rolling the connection keeps every worker —
        // canary included — in the traffic mix.
        if (I % 100 == 99)
          C.disconnect();
        if (C.get("/doc" + std::to_string(I++ % 8) + ".html"))
          Served.fetch_add(1);
      }
    });
  // Warm: the gates compare rates, so give both groups a baseline.
  while (Served.load() < 200)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  RolloutOptions RO;
  RO.CanaryWorkers = 1;
  RO.WindowMs = kWindowMs;
  RO.MinSamples = 5;
  uint64_t Id = cantFail(
      App.rollouts().startArtifactText(PatchText, "bench_rollout", RO),
      "start rollout");
  App.rollouts().waitIdle();
  RolloutRecord Rec = cantFail(App.rollouts().rollout(Id), "record");

  Stop.store(true);
  for (std::thread &T : Loaders)
    T.join();
  Pool.stop();
  return Rec;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Samples = 5;
  bool Json = false;
  const char *OutPath = nullptr;
  const char *MergePath = nullptr;
  unsigned Positional = 0;
  for (int I = 1; I != argc; ++I) {
    if (std::strcmp(argv[I], "--json") == 0)
      Json = true;
    else if (std::strcmp(argv[I], "--out") == 0 && I + 1 < argc)
      OutPath = argv[++I];
    else if (std::strcmp(argv[I], "--merge") == 0 && I + 1 < argc)
      MergePath = argv[++I];
    else if (Positional++ == 0)
      Samples = static_cast<unsigned>(std::atoi(argv[I]));
  }

  struct FaultCase {
    const char *Kind;
    std::string Text;
    bool TrapsNotErrors; ///< bad serves counted as traps, not 5xxs
  };
  std::vector<FaultCase> Cases = {
      {"error-500", faultinject::error500PatchText(), false},
      {"trap-on-call", faultinject::trapPatchText(), true},
  };

  std::vector<FaultAgg> Table;
  for (const FaultCase &C : Cases) {
    FaultAgg A;
    A.Kind = C.Kind;
    for (unsigned I = 0; I != Samples; ++I) {
      RolloutRecord Rec = runOne(C.Text);
      ++A.Samples;
      if (Rec.Verdict != "rolled-back")
        continue; // an idle window can promote; count only real verdicts
      ++A.RolledBack;
      A.DetectMs.addSample(Rec.DetectMs);
      A.RevertMs.addSample(Rec.RevertMs);
      A.BadServes.addSample(static_cast<double>(
          C.TrapsNotErrors ? Rec.CanaryTraps : Rec.CanaryErrors));
      A.Control5xx.addSample(static_cast<double>(Rec.ControlErrors));
    }
    Table.push_back(std::move(A));
  }

  FILE *Out = stdout;
  if (OutPath) {
    Out = std::fopen(OutPath, "w");
    if (!Out) {
      std::fprintf(stderr, "cannot open %s\n", OutPath);
      return 1;
    }
  }

  auto appendRows = [&](std::string &J) {
    bool First = true;
    for (const FaultAgg &A : Table) {
      char Row[512];
      std::snprintf(
          Row, sizeof(Row),
          "%s\n    {\"fault\": \"%s\", \"samples\": %u, "
          "\"rolled_back\": %u, \"window_ms\": %llu, "
          "\"detect_ms_mean\": %.2f, \"detect_ms_max\": %.2f, "
          "\"revert_ms_mean\": %.3f, \"revert_ms_max\": %.3f, "
          "\"bad_serves_mean\": %.1f, \"bad_serves_max\": %.0f, "
          "\"control_5xx_max\": %.0f}",
          First ? "" : ",", A.Kind.c_str(), A.Samples, A.RolledBack,
          static_cast<unsigned long long>(kWindowMs), A.DetectMs.mean(),
          A.DetectMs.max(), A.RevertMs.mean(), A.RevertMs.max(),
          A.BadServes.mean(), A.BadServes.max(), A.Control5xx.max());
      J += Row;
      First = false;
    }
  };

  if (Json) {
    std::string J = "{\n  \"bench\": \"rollout\",\n  \"workers\": " +
                    std::to_string(kWorkers) + ",\n  \"rollout\": [";
    appendRows(J);
    J += "\n  ]\n}\n";
    std::fprintf(Out, "%s", J.c_str());
  } else {
    std::fprintf(Out,
                 "canary rollout reaction times (%u samples/fault, %u "
                 "workers, 1 canary,\n%llums window, live keep-alive "
                 "load)\n\n",
                 Samples, kWorkers,
                 static_cast<unsigned long long>(kWindowMs));
    std::fprintf(Out, "%-14s %6s %10s %10s %10s %10s %11s %11s\n", "fault",
                 "rolled", "detect(ms)", "max", "revert(ms)", "max",
                 "bad serves", "control 5xx");
    for (const FaultAgg &A : Table)
      std::fprintf(Out,
                   "%-14s %3u/%-3u %10.2f %10.2f %10.3f %10.3f %11.1f "
                   "%11.0f\n",
                   A.Kind.c_str(), A.RolledBack, A.Samples,
                   A.DetectMs.mean(), A.DetectMs.max(), A.RevertMs.mean(),
                   A.RevertMs.max(), A.BadServes.mean(),
                   A.Control5xx.max());
    std::fprintf(Out,
                 "\nshape check: every fault class is detected within one "
                 "observation window\nand reverted in milliseconds; the "
                 "bad binding serves only the canary's\nshare of traffic "
                 "before the revert, and the control group's 5xx count "
                 "is 0\n— the blast radius of a bad patch is one worker "
                 "for under a window.\n");
  }
  if (Out != stdout)
    std::fclose(Out);

  // Graft the table into bench_update_duration's JSON so the rollout
  // reaction times travel with the rest of the update-cost trajectory.
  if (MergePath) {
    Expected<std::string> Existing = readFile(MergePath);
    if (!Existing) {
      std::fprintf(stderr, "cannot merge into %s: %s\n", MergePath,
                   Existing.error().str().c_str());
      return 1;
    }
    size_t Close = Existing->rfind('}');
    if (Close == std::string::npos) {
      std::fprintf(stderr, "cannot merge into %s: not a JSON object\n",
                   MergePath);
      return 1;
    }
    std::string Merged = Existing->substr(0, Close);
    while (!Merged.empty() &&
           (Merged.back() == '\n' || Merged.back() == ' '))
      Merged.pop_back();
    Merged += ",\n  \"rollout\": [";
    appendRows(Merged);
    Merged += "\n  ]\n}\n";
    if (Error E = writeFile(MergePath, Merged)) {
      std::fprintf(stderr, "cannot write %s: %s\n", MergePath,
                   E.str().c_str());
      return 1;
    }
  }
  return 0;
}
