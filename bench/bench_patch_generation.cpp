//===- bench/bench_patch_generation.cpp - Experiment E6 -------*- C++ -*-===//
///
/// E6: patch-generator cost and output size vs diff size.  The paper's
/// generator diffs two program versions; usability requires it to stay
/// interactive on realistic programs.  This harness scales the number of
/// changed definitions and reports generation time, emitted provides,
/// and skeleton size.
///
//===----------------------------------------------------------------------===//

#include "patch/Generator.h"
#include "support/StringUtil.h"
#include "support/Timer.h"

#include <cstdio>

using namespace dsu;

namespace {

/// A synthetic program with \p Total functions and \p Types named types.
VersionManifest makeVersion(unsigned Total, unsigned Types,
                            unsigned Version) {
  VersionManifest M;
  M.Program = "bigapp";
  M.Version = Version;
  for (unsigned I = 0; I != Total; ++I)
    M.Functions.push_back(VmFunction{
        formatString("module_%u.function_%u", I / 32, I),
        "fn(string, int) -> string", formatString("hash-%u-v1", I), ""});
  for (unsigned T = 0; T != Types; ++T)
    M.Types.push_back(
        VmType{formatString("%%rec_%u@1", T),
               "{key: string, value: int}"});
  return M;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Total = 2048;
  unsigned Samples = 9;
  if (argc > 1)
    Total = static_cast<unsigned>(std::atoi(argv[1]));
  if (argc > 2)
    Samples = static_cast<unsigned>(std::atoi(argv[2]));

  std::printf("E6: patch generation vs diff size (program: %u functions, "
              "16 types; %u samples)\n\n",
              Total, Samples);
  std::printf("%10s %12s %12s %10s %12s %12s\n", "changed", "mean ms",
              "p95 ms", "provides", "manifest B", "stub B");
  std::printf("------------------------------------------------------------"
              "---------------\n");

  for (unsigned Changed : {1u, 4u, 16u, 64u, 256u, 512u}) {
    if (Changed > Total)
      break;
    VersionManifest Old = makeVersion(Total, 16, 1);
    VersionManifest New = makeVersion(Total, 16, 2);
    // Change K bodies, plus one type repr + one signature per 64 changes.
    for (unsigned I = 0; I != Changed; ++I)
      New.Functions[I * (Total / Changed)].BodyHash =
          formatString("hash-%u-v2", I);
    for (unsigned T = 0; T * 64 < Changed && T < 16; ++T)
      New.Types[T] = VmType{formatString("%%rec_%u@2", T),
                            "{key: string, value: int, hits: int}"};

    RunningStat S;
    size_t Provides = 0, ManifestBytes = 0, StubBytes = 0;
    for (unsigned I = 0; I != Samples; ++I) {
      Timer T;
      GeneratedPatch G = cantFail(generatePatch(Old, New), "generate");
      S.addSample(T.elapsedMs());
      Provides = G.Manifest.Provides.size();
      ManifestBytes = G.Manifest.print().size();
      StubBytes = G.StubSource.size();
    }
    std::printf("%10u %12.3f %12.3f %10zu %12zu %12zu\n", Changed,
                S.mean(), S.percentile(95), Provides, ManifestBytes,
                StubBytes);
  }

  std::printf("\nshape check (paper): generation is interactive "
              "(milliseconds) even for\nlarge diffs; output size scales "
              "with the diff, not with the program.\n");
  return 0;
}
