//===- bench/bench_flashed_throughput.cpp - Experiment E2 -----*- C++ -*-===//
///
/// E2: the paper's macro benchmark figure — FlashEd throughput across
/// reply sizes, static build vs updateable build.  The paper plots
/// connection rate / bandwidth against reply size for Flash and FlashEd
/// and reports the updateable server within a few percent of the static
/// one; this harness prints the same series for the loopback testbed.
///
/// Two connection modes per build: "one-shot" (HTTP/1.0, a fresh TCP
/// connection per request — the original path) and "keep-alive"
/// (persistent HTTP/1.1 connections through the server's zero-copy fast
/// path).  Output: one row per (mode, reply size) with requests/s and
/// Mb/s for both pipelines and the relative overhead.
///
/// Flags:
///   <N>           requests per measured point (default 400)
///   --json        emit machine-readable JSON instead of the table
///   --out FILE    write the report to FILE instead of stdout
///
//===----------------------------------------------------------------------===//

#include "flashed/App.h"
#include "flashed/Client.h"
#include "flashed/Server.h"
#include "support/StringUtil.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace dsu;
using namespace dsu::flashed;

namespace {

struct RunResult {
  double Rps = 0;
  double Mbps = 0;
};

/// Serves `Requests` GETs of one synthetic document of `Bytes` and
/// returns the measured rates.  `Static` selects the direct-call
/// pipeline (the "Flash" baseline); otherwise every stage goes through
/// the updateable indirection ("FlashEd").  `KeepAlive` selects the
/// persistent-connection fast path over the one-shot legacy path.
RunResult runOne(size_t Bytes, uint64_t Requests, bool Static,
                 bool KeepAlive) {
  Runtime RT;
  FlashedApp App(RT);
  DocStore Docs;
  Docs.put("/payload.html", syntheticBody(Bytes, Bytes));
  cantFail(App.init(std::move(Docs)), "flashed init");

  std::unique_ptr<Server> Srv;
  if (KeepAlive) {
    Srv = std::make_unique<Server>(
        [&App, Static](const RequestHead &Head, std::string_view Raw,
                       std::string &Out, SharedBody &Body) {
          if (Static)
            App.handleStaticInto(Head, Raw, Out, Body);
          else
            App.handleInto(Head, Raw, Out, Body);
        });
  } else {
    Srv = std::make_unique<Server>([&App, Static](const std::string &Raw) {
      return Static ? App.handleStatic(Raw) : App.handle(Raw);
    });
  }
  Srv->setIdleHook([&RT] { RT.updatePoint(); });
  cantFail(Srv->listenOn(0), "listen");

  std::atomic<bool> Stop{false};
  std::thread Loop([&] {
    cantFail(Srv->runUntil([&Stop] { return Stop.load(); }, 2), "serve");
  });

  auto Load = [&](uint64_t Count) {
    return KeepAlive
               ? runLoadKeepAlive(Srv->port(), {"/payload.html"}, Count,
                                  /*Connections=*/4)
               : runLoad(Srv->port(), {"/payload.html"}, Count);
  };

  // Warmup primes the document cache and the connection path.
  cantFail(Load(32), "warmup");
  Expected<LoadStats> Stats = Load(Requests);
  Stop.store(true);
  Loop.join();
  LoadStats S = cantFail(std::move(Stats), "load");

  if (S.Failures)
    std::fprintf(stderr, "warning: %llu failed requests\n",
                 static_cast<unsigned long long>(S.Failures));
  return RunResult{S.requestsPerSecond(), S.megabitsPerSecond()};
}

} // namespace

int main(int argc, char **argv) {
  uint64_t Requests = 400;
  bool Json = false;
  const char *OutPath = nullptr;
  for (int I = 1; I != argc; ++I) {
    if (std::strcmp(argv[I], "--json") == 0)
      Json = true;
    else if (std::strcmp(argv[I], "--out") == 0 && I + 1 < argc)
      OutPath = argv[++I];
    else
      Requests = std::strtoull(argv[I], nullptr, 10);
  }

  FILE *Out = stdout;
  if (OutPath) {
    Out = std::fopen(OutPath, "w");
    if (!Out) {
      std::fprintf(stderr, "cannot open %s\n", OutPath);
      return 1;
    }
  }

  const size_t Sizes[] = {512,        1 << 10,  4 << 10, 16 << 10,
                          64 << 10,   256 << 10, 1 << 20};
  const char *Modes[] = {"one-shot", "keep-alive"};

  if (!Json) {
    std::fprintf(Out,
                 "E2: FlashEd throughput vs reply size (loopback, %llu "
                 "requests/point)\n",
                 static_cast<unsigned long long>(Requests));
    std::fprintf(Out,
                 "reproduces: PLDI'01 Flash-vs-FlashEd performance "
                 "figure\n");
  } else {
    std::fprintf(Out,
                 "{\n  \"bench\": \"flashed_throughput\",\n"
                 "  \"requests_per_point\": %llu,\n  \"results\": [",
                 static_cast<unsigned long long>(Requests));
  }

  bool FirstRow = true;
  for (const char *Mode : Modes) {
    bool KeepAlive = std::strcmp(Mode, "keep-alive") == 0;
    if (!Json) {
      std::fprintf(Out, "\nmode: %s\n", Mode);
      std::fprintf(Out, "%10s | %12s %10s | %12s %10s | %9s\n", "reply",
                   "static", "", "updateable", "", "overhead");
      std::fprintf(Out, "%10s | %12s %10s | %12s %10s | %9s\n", "bytes",
                   "req/s", "Mb/s", "req/s", "Mb/s", "%");
      std::fprintf(Out,
                   "-----------+------------------------+----------------"
                   "--------+----------\n");
    }
    for (size_t Bytes : Sizes) {
      RunResult Static = runOne(Bytes, Requests, /*Static=*/true, KeepAlive);
      RunResult Upd = runOne(Bytes, Requests, /*Static=*/false, KeepAlive);
      double Overhead =
          Static.Rps > 0 ? (Static.Rps - Upd.Rps) / Static.Rps * 100.0 : 0;
      if (Json) {
        std::fprintf(Out,
                     "%s\n    {\"mode\": \"%s\", \"reply_bytes\": %zu, "
                     "\"static_rps\": %.1f, \"static_mbps\": %.2f, "
                     "\"updateable_rps\": %.1f, \"updateable_mbps\": "
                     "%.2f, \"overhead_pct\": %.2f}",
                     FirstRow ? "" : ",", Mode, Bytes, Static.Rps,
                     Static.Mbps, Upd.Rps, Upd.Mbps, Overhead);
        FirstRow = false;
      } else {
        std::fprintf(Out, "%10zu | %12.0f %10.1f | %12.0f %10.1f | %8.2f%%\n",
                     Bytes, Static.Rps, Static.Mbps, Upd.Rps, Upd.Mbps,
                     Overhead);
      }
    }
  }

  if (Json) {
    std::fprintf(Out, "\n  ]\n}\n");
  } else {
    std::fprintf(Out,
                 "\nshape check (paper): updateable tracks static within "
                 "a few percent at\nall sizes; both curves are flat in "
                 "req/s for small replies and\nbandwidth-limited for "
                 "large ones.  keep-alive removes the per-request\n"
                 "connection cost and should beat one-shot by >=2x at "
                 "small replies.\n");
  }
  if (Out != stdout)
    std::fclose(Out);
  return 0;
}
