//===- bench/bench_flashed_throughput.cpp - Experiment E2 -----*- C++ -*-===//
///
/// E2: the paper's macro benchmark figure — FlashEd throughput across
/// reply sizes, static build vs updateable build.  The paper plots
/// connection rate / bandwidth against reply size for Flash and FlashEd
/// and reports the updateable server within a few percent of the static
/// one; this harness prints the same series for the loopback testbed.
///
/// Output: one row per reply size with requests/s and Mb/s for both
/// pipelines and the relative overhead.
///
//===----------------------------------------------------------------------===//

#include "flashed/App.h"
#include "flashed/Client.h"
#include "flashed/Server.h"
#include "support/StringUtil.h"

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

using namespace dsu;
using namespace dsu::flashed;

namespace {

struct RunResult {
  double Rps = 0;
  double Mbps = 0;
};

/// Serves `Requests` GETs of one synthetic document of `Bytes` and
/// returns the measured rates.  `Static` selects the direct-call
/// pipeline (the "Flash" baseline); otherwise every stage goes through
/// the updateable indirection ("FlashEd").
RunResult runOne(size_t Bytes, uint64_t Requests, bool Static) {
  Runtime RT;
  FlashedApp App(RT);
  DocStore Docs;
  Docs.put("/payload.html", syntheticBody(Bytes, Bytes));
  cantFail(App.init(std::move(Docs)), "flashed init");

  Server Srv([&App, Static](const std::string &Raw) {
    return Static ? App.handleStatic(Raw) : App.handle(Raw);
  });
  Srv.setIdleHook([&RT] { RT.updatePoint(); });
  cantFail(Srv.listenOn(0), "listen");

  std::atomic<bool> Stop{false};
  std::thread Loop([&] {
    cantFail(Srv.runUntil([&Stop] { return Stop.load(); }, 2), "serve");
  });

  // Warmup primes the document cache and the connection path.
  cantFail(runLoad(Srv.port(), {"/payload.html"}, 32), "warmup");
  Expected<LoadStats> Stats =
      runLoad(Srv.port(), {"/payload.html"}, Requests);
  Stop.store(true);
  Loop.join();
  LoadStats S = cantFail(std::move(Stats), "load");

  if (S.Failures)
    std::fprintf(stderr, "warning: %llu failed requests\n",
                 static_cast<unsigned long long>(S.Failures));
  return RunResult{S.requestsPerSecond(), S.megabitsPerSecond()};
}

} // namespace

int main(int argc, char **argv) {
  uint64_t Requests = 400;
  if (argc > 1)
    Requests = std::strtoull(argv[1], nullptr, 10);

  const size_t Sizes[] = {512,        1 << 10,  4 << 10, 16 << 10,
                          64 << 10,   256 << 10, 1 << 20};

  std::printf("E2: FlashEd throughput vs reply size (loopback, %llu "
              "requests/point)\n",
              static_cast<unsigned long long>(Requests));
  std::printf("reproduces: PLDI'01 Flash-vs-FlashEd performance figure\n\n");
  std::printf("%10s | %12s %10s | %12s %10s | %9s\n", "reply", "static",
              "", "updateable", "", "overhead");
  std::printf("%10s | %12s %10s | %12s %10s | %9s\n", "bytes", "req/s",
              "Mb/s", "req/s", "Mb/s", "%");
  std::printf("-----------+------------------------+--------------------"
              "----+----------\n");

  for (size_t Bytes : Sizes) {
    RunResult Static = runOne(Bytes, Requests, /*Static=*/true);
    RunResult Upd = runOne(Bytes, Requests, /*Static=*/false);
    double Overhead =
        Static.Rps > 0 ? (Static.Rps - Upd.Rps) / Static.Rps * 100.0 : 0;
    std::printf("%10zu | %12.0f %10.1f | %12.0f %10.1f | %8.2f%%\n",
                Bytes, Static.Rps, Static.Mbps, Upd.Rps, Upd.Mbps,
                Overhead);
  }

  std::printf("\nshape check (paper): updateable tracks static within a "
              "few percent at\nall sizes; both curves are flat in req/s "
              "for small replies and\nbandwidth-limited for large ones.\n");
  return 0;
}
