//===- bench/bench_flashed_throughput.cpp - Experiment E2 -----*- C++ -*-===//
///
/// E2: the paper's macro benchmark figure — FlashEd throughput across
/// reply sizes, static build vs updateable build.  The paper plots
/// connection rate / bandwidth against reply size for Flash and FlashEd
/// and reports the updateable server within a few percent of the static
/// one; this harness prints the same series for the loopback testbed.
///
/// Two connection modes per build: "one-shot" (HTTP/1.0, a fresh TCP
/// connection per request — the original path) and "keep-alive"
/// (persistent HTTP/1.1 connections through the server's zero-copy fast
/// path).  Output: one row per (mode, reply size) with requests/s and
/// Mb/s for both pipelines and the relative overhead.
///
/// A third section appears with --threads N: the multi-core scaling
/// matrix.  A net::ReactorPool serves the same workload with 1, 2, ...
/// up to N workers (SO_REUSEPORT, one port) under a fixed offered load
/// from concurrent persistent-connection client threads; the report is
/// aggregate req/s per worker count and the speedup over one worker,
/// for both the static and the updateable pipeline.
///
/// Flags:
///   <N>           requests per measured point (default 400)
///   --threads T   add the reactor-pool scaling matrix up to T workers
///   --json        emit machine-readable JSON instead of the table
///   --out FILE    write the report to FILE instead of stdout
///
//===----------------------------------------------------------------------===//

#include "flashed/App.h"
#include "flashed/Client.h"
#include "flashed/Server.h"
#include "net/ReactorPool.h"
#include "support/StringUtil.h"
#include "support/Timer.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace dsu;
using namespace dsu::flashed;

namespace {

struct RunResult {
  double Rps = 0;
  double Mbps = 0;
};

/// Serves `Requests` GETs of one synthetic document of `Bytes` and
/// returns the measured rates.  `Static` selects the direct-call
/// pipeline (the "Flash" baseline); otherwise every stage goes through
/// the updateable indirection ("FlashEd").  `KeepAlive` selects the
/// persistent-connection fast path over the one-shot legacy path.
RunResult runOne(size_t Bytes, uint64_t Requests, bool Static,
                 bool KeepAlive) {
  Runtime RT;
  FlashedApp App(RT);
  DocStore Docs;
  Docs.put("/payload.html", syntheticBody(Bytes, Bytes));
  cantFail(App.init(std::move(Docs)), "flashed init");

  std::unique_ptr<Server> Srv;
  if (KeepAlive) {
    Srv = std::make_unique<Server>(
        [&App, Static](const RequestHead &Head, std::string_view Raw,
                       std::string &Out, SharedBody &Body) {
          if (Static)
            App.handleStaticInto(Head, Raw, Out, Body);
          else
            App.handleInto(Head, Raw, Out, Body);
        });
  } else {
    Srv = std::make_unique<Server>([&App, Static](const std::string &Raw) {
      return Static ? App.handleStatic(Raw) : App.handle(Raw);
    });
  }
  Srv->setIdleHook([&RT] { RT.updatePoint(); });
  cantFail(Srv->listenOn(0), "listen");

  std::atomic<bool> Stop{false};
  std::thread Loop([&] {
    cantFail(Srv->runUntil([&Stop] { return Stop.load(); }, 2), "serve");
  });

  auto Load = [&](uint64_t Count) {
    return KeepAlive
               ? runLoadKeepAlive(Srv->port(), {"/payload.html"}, Count,
                                  /*Connections=*/4)
               : runLoad(Srv->port(), {"/payload.html"}, Count);
  };

  // Warmup primes the document cache and the connection path.
  cantFail(Load(32), "warmup");
  Expected<LoadStats> Stats = Load(Requests);
  Stop.store(true);
  Loop.join();
  LoadStats S = cantFail(std::move(Stats), "load");

  if (S.Failures)
    std::fprintf(stderr, "warning: %llu failed requests\n",
                 static_cast<unsigned long long>(S.Failures));
  return RunResult{S.requestsPerSecond(), S.megabitsPerSecond()};
}

/// Serves `PerThread * ClientThreads` keep-alive GETs of one `Bytes`
/// document from a reactor pool of `Workers` and returns the aggregate
/// rates over wall-clock time.  The offered load (client threads and
/// connections) is fixed by the caller across worker counts, so the
/// speedup column isolates the serving plane.
RunResult runPoolPoint(size_t Bytes, uint64_t PerThread, bool Static,
                       unsigned Workers, unsigned ClientThreads) {
  Runtime RT;
  FlashedApp App(RT);
  DocStore Docs;
  Docs.put("/payload.html", syntheticBody(Bytes, Bytes));
  cantFail(App.init(std::move(Docs)), "flashed init");

  net::PoolOptions O;
  O.Workers = Workers;
  O.PollTimeoutMs = 2;
  net::ReactorPool Pool(
      [&App, Static](const RequestHead &Head, std::string_view Raw,
                     std::string &Out, SharedBody &Body) {
        if (Static)
          App.handleStaticInto(Head, Raw, Out, Body);
        else
          App.handleInto(Head, Raw, Out, Body);
      },
      O);
  Pool.setUpdateRuntime(RT);
  cantFail(Pool.start(), "pool start");

  // Warmup primes the document cache and one connection per worker.
  Expected<LoadStats> Warm =
      runLoadKeepAlive(Pool.port(), {"/payload.html"}, 32,
                       Workers ? Workers : 1);
  cantFail(std::move(Warm), "warmup");

  std::vector<std::thread> Clients;
  std::vector<LoadStats> PerClient(ClientThreads);
  std::atomic<uint64_t> Failures{0};
  Timer Wall;
  for (unsigned T = 0; T != ClientThreads; ++T)
    Clients.emplace_back([&, T] {
      Expected<LoadStats> S = runLoadKeepAlive(
          Pool.port(), {"/payload.html"}, PerThread, /*Connections=*/2);
      if (S)
        PerClient[T] = *S;
      else
        Failures.fetch_add(PerThread);
    });
  for (std::thread &T : Clients)
    T.join();
  double Seconds = Wall.elapsedNs() / 1e9;
  Pool.stop();

  uint64_t Served = 0, Bytes2 = 0;
  for (const LoadStats &S : PerClient) {
    Served += S.Requests - S.Failures;
    Bytes2 += S.BytesReceived;
    Failures.fetch_add(S.Failures);
  }
  if (Failures.load())
    std::fprintf(stderr, "warning: %llu failed requests (pool, %u workers)\n",
                 static_cast<unsigned long long>(Failures.load()), Workers);
  RunResult R;
  R.Rps = Seconds > 0 ? Served / Seconds : 0;
  R.Mbps = Seconds > 0 ? Bytes2 * 8.0 / 1e6 / Seconds : 0;
  return R;
}

/// The measured worker counts for a --threads T matrix: powers of two
/// up to T, always including 1 and T.
std::vector<unsigned> workerSeries(unsigned Max) {
  std::vector<unsigned> S;
  for (unsigned W = 1; W < Max; W *= 2)
    S.push_back(W);
  S.push_back(Max);
  return S;
}

} // namespace

int main(int argc, char **argv) {
  uint64_t Requests = 400;
  bool Json = false;
  unsigned Threads = 0;
  const char *OutPath = nullptr;
  for (int I = 1; I != argc; ++I) {
    if (std::strcmp(argv[I], "--json") == 0)
      Json = true;
    else if (std::strcmp(argv[I], "--out") == 0 && I + 1 < argc)
      OutPath = argv[++I];
    else if (std::strcmp(argv[I], "--threads") == 0 && I + 1 < argc)
      Threads = static_cast<unsigned>(std::atoi(argv[++I]));
    else
      Requests = std::strtoull(argv[I], nullptr, 10);
  }

  FILE *Out = stdout;
  if (OutPath) {
    Out = std::fopen(OutPath, "w");
    if (!Out) {
      std::fprintf(stderr, "cannot open %s\n", OutPath);
      return 1;
    }
  }

  const size_t Sizes[] = {512,        1 << 10,  4 << 10, 16 << 10,
                          64 << 10,   256 << 10, 1 << 20};
  const char *Modes[] = {"one-shot", "keep-alive"};

  if (!Json) {
    std::fprintf(Out,
                 "E2: FlashEd throughput vs reply size (loopback, %llu "
                 "requests/point)\n",
                 static_cast<unsigned long long>(Requests));
    std::fprintf(Out,
                 "reproduces: PLDI'01 Flash-vs-FlashEd performance "
                 "figure\n");
  } else {
    std::fprintf(Out,
                 "{\n  \"bench\": \"flashed_throughput\",\n"
                 "  \"requests_per_point\": %llu,\n  \"results\": [",
                 static_cast<unsigned long long>(Requests));
  }

  bool FirstRow = true;
  for (const char *Mode : Modes) {
    bool KeepAlive = std::strcmp(Mode, "keep-alive") == 0;
    if (!Json) {
      std::fprintf(Out, "\nmode: %s\n", Mode);
      std::fprintf(Out, "%10s | %12s %10s | %12s %10s | %9s\n", "reply",
                   "static", "", "updateable", "", "overhead");
      std::fprintf(Out, "%10s | %12s %10s | %12s %10s | %9s\n", "bytes",
                   "req/s", "Mb/s", "req/s", "Mb/s", "%");
      std::fprintf(Out,
                   "-----------+------------------------+----------------"
                   "--------+----------\n");
    }
    for (size_t Bytes : Sizes) {
      RunResult Static = runOne(Bytes, Requests, /*Static=*/true, KeepAlive);
      RunResult Upd = runOne(Bytes, Requests, /*Static=*/false, KeepAlive);
      double Overhead =
          Static.Rps > 0 ? (Static.Rps - Upd.Rps) / Static.Rps * 100.0 : 0;
      if (Json) {
        std::fprintf(Out,
                     "%s\n    {\"mode\": \"%s\", \"reply_bytes\": %zu, "
                     "\"static_rps\": %.1f, \"static_mbps\": %.2f, "
                     "\"updateable_rps\": %.1f, \"updateable_mbps\": "
                     "%.2f, \"overhead_pct\": %.2f}",
                     FirstRow ? "" : ",", Mode, Bytes, Static.Rps,
                     Static.Mbps, Upd.Rps, Upd.Mbps, Overhead);
        FirstRow = false;
      } else {
        std::fprintf(Out, "%10zu | %12.0f %10.1f | %12.0f %10.1f | %8.2f%%\n",
                     Bytes, Static.Rps, Static.Mbps, Upd.Rps, Upd.Mbps,
                     Overhead);
      }
    }
  }

  if (Threads > 0) {
    // --- The multi-core scaling matrix (reactor pool) -------------------
    constexpr size_t ScaleBytes = 4 << 10;
    // Offered load is fixed across worker counts: enough concurrent
    // blocking clients to keep Threads workers busy.
    unsigned ClientThreads = 2 * Threads;
    uint64_t PerThread = Requests;
    std::vector<unsigned> Series = workerSeries(Threads);

    if (Json)
      std::fprintf(Out,
                   "\n  ],\n  \"threads_max\": %u,\n"
                   "  \"scaling_reply_bytes\": %zu,\n"
                   "  \"scaling_client_threads\": %u,\n"
                   "  \"scaling\": [",
                   Threads, ScaleBytes, ClientThreads);
    else {
      std::fprintf(Out,
                   "\nmode: reactor pool scaling (keep-alive, %zu-byte "
                   "reply, %u client threads)\n",
                   ScaleBytes, ClientThreads);
      std::fprintf(Out, "%8s | %12s %10s | %12s %10s | %8s\n", "workers",
                   "static", "", "updateable", "", "speedup");
      std::fprintf(Out, "%8s | %12s %10s | %12s %10s | %8s\n", "", "req/s",
                   "Mb/s", "req/s", "Mb/s", "vs 1");
      std::fprintf(Out, "---------+------------------------+--------------"
                        "----------+---------\n");
    }
    double BaseUpd = 0;
    bool FirstScale = true;
    for (unsigned W : Series) {
      RunResult St =
          runPoolPoint(ScaleBytes, PerThread, /*Static=*/true, W,
                       ClientThreads);
      RunResult Up =
          runPoolPoint(ScaleBytes, PerThread, /*Static=*/false, W,
                       ClientThreads);
      if (BaseUpd == 0)
        BaseUpd = Up.Rps;
      double Speedup = BaseUpd > 0 ? Up.Rps / BaseUpd : 0;
      if (Json) {
        std::fprintf(Out,
                     "%s\n    {\"workers\": %u, \"static_rps\": %.1f, "
                     "\"static_mbps\": %.2f, \"updateable_rps\": %.1f, "
                     "\"updateable_mbps\": %.2f, "
                     "\"updateable_speedup_vs_1\": %.2f}",
                     FirstScale ? "" : ",", W, St.Rps, St.Mbps, Up.Rps,
                     Up.Mbps, Speedup);
        FirstScale = false;
      } else {
        std::fprintf(Out, "%8u | %12.0f %10.1f | %12.0f %10.1f | %7.2fx\n",
                     W, St.Rps, St.Mbps, Up.Rps, Up.Mbps, Speedup);
      }
    }
    if (Json)
      std::fprintf(Out, "\n  ]\n}\n");
    else
      std::fprintf(Out,
                   "\nshape check: aggregate req/s grows near-linearly "
                   "with workers until the\nmachine runs out of cores "
                   "(this host: %u), updateable tracking static\n"
                   "throughout.\n",
                   std::thread::hardware_concurrency());
  } else if (Json) {
    std::fprintf(Out, "\n  ]\n}\n");
  } else {
    std::fprintf(Out,
                 "\nshape check (paper): updateable tracks static within "
                 "a few percent at\nall sizes; both curves are flat in "
                 "req/s for small replies and\nbandwidth-limited for "
                 "large ones.  keep-alive removes the per-request\n"
                 "connection cost and should beat one-shot by >=2x at "
                 "small replies.\n");
  }
  if (Out != stdout)
    std::fclose(Out);
  return 0;
}
