//===- bench/bench_code_size.cpp - Experiment E5 --------------*- C++ -*-===//
///
/// E5: code-size overhead of verifiable/updateable artifacts.  The paper
/// reports TAL's typing annotations inflating object size relative to
/// plain binaries; the analogous costs here are (a) the symbol/typing
/// metadata a VTAL module carries beyond its stripped bytecode, (b) the
/// manifest each patch ships, and (c) native patch objects vs the bytes
/// of code they replace.
///
//===----------------------------------------------------------------------===//

#include "patch/Manifest.h"
#include "support/MemoryBuffer.h"
#include "support/StringUtil.h"
#include "vtal/Assembler.h"
#include "vtal/Bytecode.h"

#include <cstdio>
#include <string>

using namespace dsu;
using namespace dsu::vtal;

namespace {

/// Builds a synthetic module with \p Funcs functions of ~20 instructions.
Module synthesize(unsigned Funcs) {
  std::string Src = "module synth\n";
  for (unsigned F = 0; F != Funcs; ++F) {
    Src += formatString("func fn_%u (a_very_descriptive_parameter: int) "
                        "-> int {\n",
                        F);
    Src += "  locals (accumulator_with_long_name: int, index_counter: "
           "int)\n";
    Src += "  push.i 0\n  store accumulator_with_long_name\n";
    Src += "  push.i 0\n  store index_counter\n";
    Src += "loop_head:\n";
    Src += "  load index_counter\n  push.i 8\n  ge\n  brif loop_exit\n";
    Src += "  load accumulator_with_long_name\n  load "
           "a_very_descriptive_parameter\n  add\n";
    Src += "  store accumulator_with_long_name\n";
    Src += "  load index_counter\n  push.i 1\n  add\n  store "
           "index_counter\n  br loop_head\n";
    Src += "loop_exit:\n  load accumulator_with_long_name\n  ret\n}\n";
  }
  return cantFail(assemble(Src), "synthesize");
}

void row(const char *Name, size_t Plain, size_t Annotated) {
  double Pct = Plain ? (double)(Annotated - Plain) / Plain * 100.0 : 0;
  std::printf("%-34s %12zu %14zu %9.1f%%\n", Name, Plain, Annotated, Pct);
}

} // namespace

int main() {
  std::printf("E5: artifact size overhead of verifiable/updateable "
              "shipping formats\n");
  std::printf("reproduces: PLDI'01 code-size overhead table (TAL "
              "annotations vs plain code)\n\n");
  std::printf("%-34s %12s %14s %10s\n", "artifact", "plain B",
              "annotated B", "overhead");
  std::printf("------------------------------------------------------------"
              "-------------\n");

  // (a) VTAL modules: stripped bytecode vs full (typed, named) encoding
  // vs source text.
  for (unsigned Funcs : {1u, 8u, 64u}) {
    Module M = synthesize(Funcs);
    std::string Full = encodeModule(M);
    row(formatString("vtal module, %u fn (encode)", Funcs).c_str(),
        strippedSize(M), Full.size());
  }
  {
    Module M = synthesize(8);
    row("vtal module, 8 fn (asm text)", strippedSize(M), M.str().size());
  }

  // (b) Patch manifests: the interface metadata every patch carries.
  {
    PatchManifest PM;
    PM.Id = "sample-patch";
    PM.Description = "representative manifest";
    for (int I = 0; I != 6; ++I)
      PM.Provides.push_back(ManifestProvide{
          "app.fn" + std::to_string(I), "fn(string, int) -> string",
          "dsu_sym_" + std::to_string(I), ""});
    PM.NewTypes.push_back(ManifestNewType{
        "%rec@2", "{key: string, value: int, hits: int}"});
    PM.Transformers.push_back(
        ManifestTransformer{"%rec@1", "%rec@2", "dsu_xform_rec"});
    Module M = synthesize(6);
    std::string Code = encodeModule(M);
    row("patch = code + manifest", Code.size(),
        Code.size() + PM.print().size());
  }

  // (c) Native patch shared objects (built under patches/) vs the bytes
  // of new machine code they carry — the dlopen-path shipping overhead
  // (ELF headers, dynamic tables, the embedded manifest).
  struct NativeRow {
    const char *File;
    const char *Label;
    size_t NewCodeEstimate; // bytes of .text the patch functions need
  };
  for (const NativeRow &R :
       {NativeRow{"/p1_parsefix.so", "native patch p1_parsefix.so", 600},
        NativeRow{"/mathlib_v2.so", "native patch mathlib_v2.so", 900}}) {
    Expected<uint64_t> Size =
        fileSize(std::string(DSU_PATCH_DIR) + R.File);
    if (Size)
      row(R.Label, R.NewCodeEstimate, static_cast<size_t>(*Size));
    else
      std::printf("%-34s (not built: %s)\n", R.Label,
                  Size.error().str().c_str());
  }

  std::printf("\nshape check (paper): the verifiable/updateable shipping "
              "form costs a\nconstant-factor size overhead (tens of "
              "percent for typed bytecode, more\nfor small native .so "
              "files dominated by ELF fixed costs), amortizing as\npatch "
              "code grows — matching the paper's TAL-annotation "
              "observation.\n");
  return 0;
}
