//===- bench/bench_journal.cpp - Durable journal costs --------------------===//
///
/// What does crash safety cost?  Two numbers matter:
///
///   1. Append latency — the fsync'd Intent+Seal pair added to every
///      operator update's staging path (measured with Sync on and off,
///      so the fdatasync share is visible).
///   2. Replay time — how long a restarted server spends rebuilding its
///      committed chain through the ordinary stage->commit pipeline
///      before the listeners open, as a function of chain length.
///
/// Usage: bench_journal [--json] [--out FILE] [--merge FILE]
///                      [--appends N] [--chains N]
///
/// `--merge BENCH_update.json` splices a "journal" object into the
/// existing report so one file tracks the whole update-path trajectory.

#include "core/Runtime.h"
#include "flashed/App.h"
#include "flashed/DocStore.h"
#include "patch/PatchLoader.h"
#include "persist/Journal.h"
#include "persist/Replay.h"
#include "support/Error.h"
#include "support/MemoryBuffer.h"
#include "support/StringUtil.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

using namespace dsu;
using namespace dsu::flashed;

namespace {

std::string mimePatch(unsigned I) {
  return formatString(R"dsu(
(patch
  (id "bench-journal-%u")
  (description "bench: mime_type constant %u")
  (provides
    (fn (name "flashed.mime_type")
        (type "fn(string) -> string")
        (vtal-fn "mime_type")))
  (vtal-module
"module bench_journal
func mime_type (path: string) -> string {
  push.s \"text/x-bench-%u\"
  ret
}"))
)dsu",
                      I, I, I);
}

std::string freshDir(const std::string &Name) {
  std::string D = "/tmp/dsu_bench_journal_" + Name;
  std::system(("rm -rf '" + D + "'").c_str());
  return D;
}

struct AppendStats {
  bool Sync = false;
  RunningStat IntentUs, SealUs;
};

/// N Intent+Seal pairs against one journal; the artifact text is
/// identical every round so the content-addressed store is written once
/// and the numbers isolate the log append (+ fdatasync when \p Sync).
AppendStats benchAppend(unsigned N, bool Sync) {
  AppendStats St;
  St.Sync = Sync;
  std::string Dir = freshDir(Sync ? "append_sync" : "append_nosync");
  persist::UpdateJournal::Options O;
  O.Sync = Sync;
  std::unique_ptr<persist::UpdateJournal> J =
      cantFail(persist::UpdateJournal::open(Dir, O), "open journal");
  J->beginBoot("");
  std::string Art = mimePatch(0);
  for (unsigned I = 0; I != N; ++I) {
    Timer T;
    uint64_t Seq = cantFail(
        J->appendIntent("bench-journal-0", Art,
                        persist::IntentOrigin::Operator),
        "append intent");
    St.IntentUs.addSample(T.elapsedNs() / 1e3);
    T.reset();
    cantFail(J->appendSeal(Seq, persist::SealOutcome::Committed, "rolling",
                           ""),
             "append seal");
    St.SealUs.addSample(T.elapsedNs() / 1e3);
  }
  cantFail(J->sealCleanShutdown(), "clean shutdown");
  return St;
}

struct ReplayPoint {
  unsigned Chain = 0;
  double Ms = 0;
};

/// Builds a committed chain of length \p L through the real pipeline,
/// closes the journal, then measures a cold-boot replay into a fresh
/// runtime.  Distinct patch bodies per link keep every artifact hash —
/// and therefore every store read — distinct.
ReplayPoint benchReplay(unsigned L) {
  std::string Dir = freshDir(formatString("replay_%u", L));
  persist::UpdateJournal::Options O;
  O.Sync = false;
  {
    std::unique_ptr<persist::UpdateJournal> J =
        cantFail(persist::UpdateJournal::open(Dir, O), "open journal");
    J->beginBoot("");
    Runtime RT;
    FlashedApp App(RT);
    DocStore Docs;
    Docs.put("/doc.html", "<html>bench</html>");
    cantFail(App.init(std::move(Docs)), "app init");
    RT.attachJournal(J.get());
    for (unsigned I = 0; I != L; ++I) {
      std::string Art = mimePatch(I);
      uint64_t Seq = cantFail(
          J->appendIntent(formatString("bench-journal-%u", I), Art,
                          persist::IntentOrigin::Operator),
          "append intent");
      Patch P = cantFail(loadVtalPatch(RT.types(), RT.exports(), Art,
                                       "bench_journal"),
                         "load patch");
      StagedUpdate U =
          cantFail(RT.stageJournaled(std::move(P), Seq), "stage");
      cantFail(U.commit(), "commit");
    }
    cantFail(J->sealCleanShutdown(), "clean shutdown");
    RT.attachJournal(nullptr);
  }

  std::unique_ptr<persist::UpdateJournal> J =
      cantFail(persist::UpdateJournal::open(Dir, O), "reopen journal");
  J->beginBoot("");
  Runtime RT;
  FlashedApp App(RT);
  DocStore Docs;
  Docs.put("/doc.html", "<html>bench</html>");
  cantFail(App.init(std::move(Docs)), "app init");
  RT.attachJournal(J.get());

  Timer T;
  persist::ReplayStats St = persist::replayJournal(RT, *J);
  ReplayPoint Pt;
  Pt.Chain = L;
  Pt.Ms = T.elapsedNs() / 1e6;
  RT.attachJournal(nullptr);
  if (St.Committed != L) {
    std::fprintf(stderr, "bench_journal: replay committed %u of %u\n",
                 St.Committed, L);
    std::exit(1);
  }
  return Pt;
}

std::string appendJson(const std::vector<AppendStats> &Appends,
                       const std::vector<ReplayPoint> &Replays) {
  std::string Rows;
  for (const AppendStats &A : Appends) {
    if (!Rows.empty())
      Rows += ",\n";
    Rows += formatString(
        "    {\"mode\": \"%s\", \"samples\": %zu, "
        "\"intent_mean_us\": %.2f, \"intent_p50_us\": %.2f, "
        "\"intent_p99_us\": %.2f, \"intent_max_us\": %.2f, "
        "\"seal_mean_us\": %.2f, \"seal_p99_us\": %.2f}",
        A.Sync ? "fsync" : "nosync", A.IntentUs.count(), A.IntentUs.mean(),
        A.IntentUs.percentile(50), A.IntentUs.percentile(99),
        A.IntentUs.max(), A.SealUs.mean(), A.SealUs.percentile(99));
  }
  std::string RRows;
  for (const ReplayPoint &R : Replays) {
    if (!RRows.empty())
      RRows += ",\n";
    RRows += formatString(
        "    {\"chain\": %u, \"replay_ms\": %.3f, \"per_patch_ms\": %.3f}",
        R.Chain, R.Ms, R.Chain ? R.Ms / R.Chain : 0.0);
  }
  return "{\n  \"append\": [\n" + Rows + "\n  ],\n  \"replay\": [\n" +
         RRows + "\n  ]\n}";
}

} // namespace

int main(int argc, char **argv) {
  bool Json = false;
  std::string OutFile, MergeFile;
  uint64_t Appends = 512, Chains = 32;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    const char *P = I + 1 < argc ? argv[I + 1] : nullptr;
    if (A == "--json")
      Json = true;
    else if (A == "--out" && P)
      OutFile = argv[++I];
    else if (A == "--merge" && P)
      MergeFile = argv[++I];
    else if (A == "--appends" && P && parseUInt(argv[I + 1], Appends))
      ++I;
    else if (A == "--chains" && P && parseUInt(argv[I + 1], Chains))
      ++I;
    else {
      std::fprintf(stderr,
                   "usage: %s [--json] [--out FILE] [--merge FILE] "
                   "[--appends N] [--chains N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!Appends || !Chains) {
    std::fprintf(stderr, "bench_journal: --appends/--chains must be > 0\n");
    return 2;
  }

  std::vector<AppendStats> Appended;
  Appended.push_back(benchAppend(static_cast<unsigned>(Appends), true));
  Appended.push_back(benchAppend(static_cast<unsigned>(Appends), false));

  std::vector<ReplayPoint> Replays;
  for (unsigned L : {1u, 8u, 32u})
    if (L < Chains)
      Replays.push_back(benchReplay(L));
  Replays.push_back(benchReplay(static_cast<unsigned>(Chains)));

  if (!Json) {
    std::printf("update journal: append latency (%llu appends each)\n",
                static_cast<unsigned long long>(Appends));
    for (const AppendStats &A : Appended)
      std::printf("  %-7s intent mean %8.2fus  p50 %8.2fus  p99 %8.2fus"
                  "  max %8.2fus | seal mean %8.2fus  p99 %8.2fus\n",
                  A.Sync ? "fsync" : "nosync", A.IntentUs.mean(),
                  A.IntentUs.percentile(50), A.IntentUs.percentile(99),
                  A.IntentUs.max(), A.SealUs.mean(),
                  A.SealUs.percentile(99));
    std::printf("update journal: boot-time replay\n");
    for (const ReplayPoint &R : Replays)
      std::printf("  chain %3u  replay %8.3fms  (%.3fms/patch)\n", R.Chain,
                  R.Ms, R.Chain ? R.Ms / R.Chain : 0.0);
    return 0;
  }

  std::string J = appendJson(Appended, Replays);
  if (!MergeFile.empty()) {
    // Splice into an existing report: "...}" -> "..., "journal": {...}}".
    Expected<std::string> Existing = readFile(MergeFile);
    if (!Existing) {
      std::fprintf(stderr, "bench_journal: cannot merge into %s: %s\n",
                   MergeFile.c_str(), Existing.error().str().c_str());
      return 1;
    }
    size_t Close = Existing->rfind('}');
    if (Close == std::string::npos) {
      std::fprintf(stderr, "bench_journal: %s is not a JSON object\n",
                   MergeFile.c_str());
      return 1;
    }
    std::string Merged = Existing->substr(0, Close);
    while (!Merged.empty() &&
           (Merged.back() == '\n' || Merged.back() == ' '))
      Merged.pop_back();
    Merged += ",\n  \"journal\": ";
    // Re-indent the journal object to sit one level deep.
    for (char C : J) {
      Merged += C;
      if (C == '\n')
        Merged += "  ";
    }
    Merged += "\n}\n";
    if (Error E = writeFile(MergeFile, Merged)) {
      std::fprintf(stderr, "bench_journal: %s\n", E.str().c_str());
      return 1;
    }
    std::printf("merged journal bench into %s\n", MergeFile.c_str());
    return 0;
  }
  if (!OutFile.empty()) {
    if (Error E = writeFile(OutFile, J + "\n")) {
      std::fprintf(stderr, "bench_journal: %s\n", E.str().c_str());
      return 1;
    }
    std::printf("wrote %s\n", OutFile.c_str());
    return 0;
  }
  std::printf("%s\n", J.c_str());
  return 0;
}
